//! # dsmpm2-protocols — the built-in DSM-PM2 consistency protocols
//!
//! This crate provides the six built-in protocols of Table 2 of the paper,
//! plus the hybrid protocol of §2.3 assembled from library routines:
//!
//! | Protocol | Consistency | Features |
//! |---|---|---|
//! | [`LiHudak`] | Sequential | MRSW, page replication on read / migration on write, dynamic distributed manager |
//! | [`MigrateThread`] | Sequential | Thread migration on read and write faults, fixed distributed manager |
//! | [`ErcSw`] | Release | MRSW eager release consistency, dynamic distributed manager |
//! | [`HbrcMw`] | Release | MRMW home-based lazy release consistency, twins and on-release diffing |
//! | [`JavaConsistency::inline_check`] (`java_ic`) | Java | Home-based MRMW, explicit inline locality checks, on-the-fly diff recording |
//! | [`JavaConsistency::page_fault`] (`java_pf`) | Java | Home-based MRMW, page-fault access detection, on-the-fly diff recording |
//!
//! Register them all with [`register_builtin_protocols`], then select one per
//! program (`set_default_protocol`) or per allocation (`DsmAttr`).
//!
//! Beyond the paper's Table 2, the crate also ships three *extension*
//! protocols written on the same toolbox — precisely the kind of protocol
//! experiment the platform exists to make cheap (register them with
//! [`register_extension_protocols`]):
//!
//! | Protocol | Consistency | Features |
//! |---|---|---|
//! | [`LiHudakFixed`] | Sequential | MRSW with a *fixed* distributed manager (all requests routed through the page's home) |
//! | [`EntryConsistency`] (`entry_sw`) | Entry | Midway-style: regions bound to locks, fetched at acquire, published at release |
//! | [`HlrcNotices`] | Release | Home-based *lazy* release consistency: write notices consumed at acquire instead of eager invalidation |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod entry_sw;
mod erc_sw;
mod hbrc_mw;
mod hlrc_notices;
pub mod hybrid;
mod java;
mod li_hudak;
mod li_hudak_fixed;
mod migrate_thread;

use std::sync::Arc;

use dsmpm2_core::{DsmRuntime, ProtocolId};

pub use entry_sw::EntryConsistency;
pub use erc_sw::ErcSw;
pub use hbrc_mw::HbrcMw;
pub use hlrc_notices::HlrcNotices;
pub use java::{JavaConsistency, JavaDetection};
pub use li_hudak::LiHudak;
pub use li_hudak_fixed::LiHudakFixed;
pub use migrate_thread::MigrateThread;

/// Identifiers of the built-in protocols after registration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BuiltinProtocols {
    /// Sequential consistency, page replication/migration (Li & Hudak).
    pub li_hudak: ProtocolId,
    /// Sequential consistency through thread migration.
    pub migrate_thread: ProtocolId,
    /// Eager release consistency, single writer.
    pub erc_sw: ProtocolId,
    /// Home-based release consistency, multiple writers.
    pub hbrc_mw: ProtocolId,
    /// Java consistency with inline locality checks.
    pub java_ic: ProtocolId,
    /// Java consistency with page-fault detection.
    pub java_pf: ProtocolId,
}

impl BuiltinProtocols {
    /// Look a built-in protocol up by its paper name.
    pub fn by_name(&self, name: &str) -> Option<ProtocolId> {
        match name {
            "li_hudak" => Some(self.li_hudak),
            "migrate_thread" => Some(self.migrate_thread),
            "erc_sw" => Some(self.erc_sw),
            "hbrc_mw" => Some(self.hbrc_mw),
            "java_ic" => Some(self.java_ic),
            "java_pf" => Some(self.java_pf),
            _ => None,
        }
    }

    /// The four protocols compared in the paper's TSP experiment (Figure 4).
    pub fn figure4_set(&self) -> [(&'static str, ProtocolId); 4] {
        [
            ("li_hudak", self.li_hudak),
            ("migrate_thread", self.migrate_thread),
            ("erc_sw", self.erc_sw),
            ("hbrc_mw", self.hbrc_mw),
        ]
    }
}

/// Register the six built-in protocols on `runtime` and return their ids.
/// Does not change the default protocol.
pub fn register_builtin_protocols(runtime: &DsmRuntime) -> BuiltinProtocols {
    BuiltinProtocols {
        li_hudak: runtime.register_protocol(Arc::new(LiHudak::new())),
        migrate_thread: runtime.register_protocol(Arc::new(MigrateThread::new())),
        erc_sw: runtime.register_protocol(Arc::new(ErcSw::new())),
        hbrc_mw: runtime.register_protocol(Arc::new(HbrcMw::new())),
        java_ic: runtime.register_protocol(Arc::new(JavaConsistency::inline_check())),
        java_pf: runtime.register_protocol(Arc::new(JavaConsistency::page_fault())),
    }
}

/// Identifiers (and shared handles) of the extension protocols after
/// registration with [`register_extension_protocols`].
#[derive(Clone)]
pub struct ExtensionProtocols {
    /// Sequential consistency with a fixed distributed manager.
    pub li_hudak_fixed: ProtocolId,
    /// Entry consistency (Midway-style).
    pub entry_sw: ProtocolId,
    /// Home-based lazy release consistency with write notices.
    pub hlrc_notices: ProtocolId,
    /// Handle used to bind shared regions to their guarding locks
    /// ([`EntryConsistency::bind`]).
    pub entry: Arc<EntryConsistency>,
    /// Handle used to inspect the lazy protocol's write-notice state.
    pub hlrc: Arc<HlrcNotices>,
}

impl ExtensionProtocols {
    /// Look an extension protocol up by name.
    pub fn by_name(&self, name: &str) -> Option<ProtocolId> {
        match name {
            "li_hudak_fixed" => Some(self.li_hudak_fixed),
            "entry_sw" => Some(self.entry_sw),
            "hlrc_notices" => Some(self.hlrc_notices),
            _ => None,
        }
    }
}

impl std::fmt::Debug for ExtensionProtocols {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExtensionProtocols")
            .field("li_hudak_fixed", &self.li_hudak_fixed)
            .field("entry_sw", &self.entry_sw)
            .field("hlrc_notices", &self.hlrc_notices)
            .finish()
    }
}

/// Register the three extension protocols on `runtime` and return their ids
/// together with the handles needed to configure them. Does not change the
/// default protocol.
pub fn register_extension_protocols(runtime: &DsmRuntime) -> ExtensionProtocols {
    let entry = Arc::new(EntryConsistency::new());
    let hlrc = Arc::new(HlrcNotices::new());
    ExtensionProtocols {
        li_hudak_fixed: runtime.register_protocol(Arc::new(LiHudakFixed::new())),
        entry_sw: runtime.register_protocol(entry.clone()),
        hlrc_notices: runtime.register_protocol(hlrc.clone()),
        entry,
        hlrc,
    }
}

/// Register every protocol this crate knows about — the six of the paper's
/// Table 2 plus the three extensions — and return both id sets.
pub fn register_all_protocols(runtime: &DsmRuntime) -> (BuiltinProtocols, ExtensionProtocols) {
    (
        register_builtin_protocols(runtime),
        register_extension_protocols(runtime),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsmpm2_core::{
        Access, DsmAttr, DsmRuntime, Engine, HomePolicy, NodeId, Pm2Config, SimDuration,
    };
    use parking_lot::Mutex;
    use std::sync::Arc as StdArc;

    fn setup(nodes: usize) -> (Engine, DsmRuntime, BuiltinProtocols) {
        let engine = Engine::new();
        let rt = DsmRuntime::new(&engine, Pm2Config::bip_myrinet(nodes));
        let builtins = register_builtin_protocols(&rt);
        (engine, rt, builtins)
    }

    #[test]
    fn builtin_registration_exposes_paper_names() {
        let (_engine, rt, builtins) = setup(2);
        assert_eq!(
            rt.protocol_names(),
            vec![
                "li_hudak",
                "migrate_thread",
                "erc_sw",
                "hbrc_mw",
                "java_ic",
                "java_pf"
            ]
        );
        assert_eq!(rt.protocol_by_name("hbrc_mw"), Some(builtins.hbrc_mw));
        assert_eq!(builtins.by_name("li_hudak"), Some(builtins.li_hudak));
        assert_eq!(builtins.by_name("nope"), None);
        assert_eq!(builtins.figure4_set().len(), 4);
    }

    /// li_hudak: a value written on the home node is read correctly from a
    /// remote node via a read fault + page replication.
    #[test]
    fn li_hudak_read_replication() {
        let (mut engine, rt, builtins) = setup(2);
        rt.set_default_protocol(builtins.li_hudak);
        let addr = rt.dsm_malloc(4096, DsmAttr::default().home(HomePolicy::Fixed(NodeId(0))));
        let barrier = rt.create_barrier(2, None);
        let seen = StdArc::new(Mutex::new(0u64));

        rt.spawn_dsm_thread(NodeId(0), "writer", move |ctx| {
            ctx.write::<u64>(addr, 42);
            ctx.dsm_barrier(barrier);
        });
        let seen2 = seen.clone();
        rt.spawn_dsm_thread(NodeId(1), "reader", move |ctx| {
            ctx.dsm_barrier(barrier);
            *seen2.lock() = ctx.read::<u64>(addr);
        });
        engine.run().unwrap();
        assert_eq!(*seen.lock(), 42);
        let stats = rt.stats().snapshot();
        assert_eq!(stats.read_faults, 1, "one remote read fault expected");
        assert_eq!(stats.page_transfers, 1);
        assert_eq!(stats.thread_migrations, 0);
    }

    /// li_hudak: write ownership migrates and other copies are invalidated, so
    /// the single-writer invariant holds and subsequent readers see the data.
    #[test]
    fn li_hudak_write_migrates_ownership_and_invalidates() {
        let (mut engine, rt, builtins) = setup(3);
        rt.set_default_protocol(builtins.li_hudak);
        let addr = rt.dsm_malloc(4096, DsmAttr::default().home(HomePolicy::Fixed(NodeId(0))));
        let b = rt.create_barrier(3, None);
        let results = StdArc::new(Mutex::new(Vec::new()));

        // Node 1 and 2 first read (get copies), then node 2 writes, then all read.
        for node in 0..3usize {
            let results = results.clone();
            rt.spawn_dsm_thread(NodeId(node), format!("t{node}"), move |ctx| {
                // Everyone reads the initial value (0).
                let v0 = ctx.read::<u64>(addr);
                ctx.dsm_barrier(b);
                if node == 2 {
                    ctx.write::<u64>(addr, 7);
                }
                ctx.dsm_barrier(b);
                let v1 = ctx.read::<u64>(addr);
                results.lock().push((node, v0, v1));
            });
        }
        engine.run().unwrap();
        let results = results.lock();
        for &(_, v0, v1) in results.iter() {
            assert_eq!(v0, 0);
            assert_eq!(v1, 7, "sequential consistency: all readers see the write");
        }
        // Ownership is now at node 2 and node 2 only.
        let page = addr.page();
        let owners: Vec<bool> = (0..3)
            .map(|n| rt.page_table(NodeId(n)).get(page).owned)
            .collect();
        assert_eq!(owners, vec![false, false, true]);
        // After the final round of reads the other nodes requested read
        // copies, so the owner's own copy was downgraded to read-only (MRSW:
        // a single writer *or* multiple readers) — but it must still be
        // readable and the owner must know about the replicas it handed out.
        assert!(rt.page_table(NodeId(2)).access(page).permits(Access::Read));
        assert!(rt.page_table(NodeId(2)).get(page).copyset.len() >= 2);
        let stats = rt.stats().snapshot();
        assert!(
            stats.invalidations >= 1,
            "copies must have been invalidated"
        );
    }

    /// migrate_thread: the faulting thread moves to the data; no page ever
    /// travels.
    #[test]
    fn migrate_thread_moves_threads_not_pages() {
        let (mut engine, rt, builtins) = setup(2);
        rt.set_default_protocol(builtins.migrate_thread);
        let addr = rt.dsm_malloc(4096, DsmAttr::default().home(HomePolicy::Fixed(NodeId(0))));
        let final_node = StdArc::new(Mutex::new(NodeId(99)));

        let f = final_node.clone();
        let state = rt.spawn_dsm_thread(NodeId(1), "roamer", move |ctx| {
            ctx.write::<u32>(addr, 5);
            assert_eq!(ctx.read::<u32>(addr), 5);
            *f.lock() = ctx.node();
        });
        engine.run().unwrap();
        assert_eq!(*final_node.lock(), NodeId(0), "thread migrated to the data");
        assert_eq!(state.migrations(), 1);
        let stats = rt.stats().snapshot();
        assert_eq!(stats.page_transfers, 0);
        assert_eq!(stats.thread_migrations, 1);
        assert_eq!(stats.write_faults, 1);
        assert_eq!(
            stats.read_faults, 0,
            "second access is local after migration"
        );
    }

    /// erc_sw: invalidations happen at release, and a reader that
    /// re-synchronizes afterwards sees the new value.
    #[test]
    fn erc_sw_invalidates_at_release() {
        let (mut engine, rt, builtins) = setup(2);
        rt.set_default_protocol(builtins.erc_sw);
        let addr = rt.dsm_malloc(4096, DsmAttr::default().home(HomePolicy::Fixed(NodeId(0))));
        let lock = rt.create_lock(Some(NodeId(0)));
        let b = rt.create_barrier(2, None);
        let observed = StdArc::new(Mutex::new((0u64, 0u64)));

        rt.spawn_dsm_thread(NodeId(0), "writer", move |ctx| {
            ctx.dsm_barrier(b); // phase 1: reader takes its copy first
            ctx.dsm_lock(lock);
            ctx.write::<u64>(addr, 99);
            ctx.dsm_unlock(lock); // eager RC: invalidate copies now
            ctx.dsm_barrier(b);
        });
        let obs = observed.clone();
        rt.spawn_dsm_thread(NodeId(1), "reader", move |ctx| {
            let before = ctx.read::<u64>(addr); // takes a read copy
            ctx.dsm_barrier(b);
            ctx.dsm_barrier(b); // wait for the writer's release
            ctx.dsm_lock(lock);
            let after = ctx.read::<u64>(addr);
            ctx.dsm_unlock(lock);
            *obs.lock() = (before, after);
        });
        engine.run().unwrap();
        let (before, after) = *observed.lock();
        assert_eq!(before, 0);
        assert_eq!(after, 99, "release-consistent value visible after acquire");
        let stats = rt.stats().snapshot();
        assert!(stats.invalidations >= 1);
    }

    /// hbrc_mw: two nodes write different words of the same page concurrently
    /// (multiple writers); after both release, the home holds the merge.
    #[test]
    fn hbrc_mw_merges_concurrent_writers_through_diffs() {
        let (mut engine, rt, builtins) = setup(3);
        rt.set_default_protocol(builtins.hbrc_mw);
        let addr = rt.dsm_malloc(4096, DsmAttr::default().home(HomePolicy::Fixed(NodeId(0))));
        let lock1 = rt.create_lock(Some(NodeId(0)));
        let lock2 = rt.create_lock(Some(NodeId(0)));
        let b = rt.create_barrier(3, None);
        let merged = StdArc::new(Mutex::new((0u64, 0u64)));

        for (node, lock, offset, value) in [(1usize, lock1, 0u64, 11u64), (2, lock2, 8, 22)] {
            rt.spawn_dsm_thread(NodeId(node), format!("writer{node}"), move |ctx| {
                ctx.dsm_lock(lock);
                ctx.write::<u64>(addr.add(offset), value);
                ctx.dsm_unlock(lock);
                ctx.dsm_barrier(b);
            });
        }
        let m = merged.clone();
        rt.spawn_dsm_thread(NodeId(0), "home-reader", move |ctx| {
            ctx.dsm_barrier(b);
            *m.lock() = (ctx.read::<u64>(addr), ctx.read::<u64>(addr.add(8)));
        });
        engine.run().unwrap();
        assert_eq!(*merged.lock(), (11, 22), "home merged both writers' diffs");
        let stats = rt.stats().snapshot();
        assert!(stats.twins_created >= 2);
        assert!(stats.diffs_sent >= 2);
    }

    /// java_pf: modifications recorded with put-granularity reach main memory
    /// at monitor exit and are observed after a monitor entry elsewhere.
    #[test]
    fn java_pf_flushes_recorded_writes_at_monitor_exit() {
        let (mut engine, rt, builtins) = setup(2);
        rt.set_default_protocol(builtins.java_pf);
        let addr = rt.dsm_malloc(4096, DsmAttr::default().home(HomePolicy::Fixed(NodeId(0))));
        let monitor = rt.create_lock(Some(NodeId(0)));
        let b = rt.create_barrier(2, None);
        let seen = StdArc::new(Mutex::new(0u32));

        rt.spawn_dsm_thread(NodeId(1), "mutator", move |ctx| {
            ctx.dsm_lock(monitor);
            ctx.write_recorded::<u32>(addr.add(16), 1234);
            ctx.dsm_unlock(monitor);
            ctx.dsm_barrier(b);
        });
        let s = seen.clone();
        rt.spawn_dsm_thread(NodeId(0), "observer", move |ctx| {
            ctx.dsm_barrier(b);
            ctx.dsm_lock(monitor);
            *s.lock() = ctx.read::<u32>(addr.add(16));
            ctx.dsm_unlock(monitor);
        });
        engine.run().unwrap();
        assert_eq!(*seen.lock(), 1234);
        assert!(rt.stats().snapshot().diffs_sent >= 1);
    }

    /// The hybrid protocol of §2.3: reads replicate, writes migrate the thread.
    #[test]
    fn hybrid_protocol_combines_replication_and_migration() {
        let (mut engine, rt, _builtins) = setup(2);
        let hybrid = rt.register_protocol(hybrid::replicate_read_migrate_write());
        rt.set_default_protocol(hybrid);
        let addr = rt.dsm_malloc(4096, DsmAttr::default().home(HomePolicy::Fixed(NodeId(0))));
        let where_after_read = StdArc::new(Mutex::new(NodeId(9)));
        let where_after_write = StdArc::new(Mutex::new(NodeId(9)));

        let r = where_after_read.clone();
        let w = where_after_write.clone();
        rt.spawn_dsm_thread(NodeId(1), "mixed", move |ctx| {
            let _ = ctx.read::<u64>(addr); // replicates the page to node 1
            *r.lock() = ctx.node();
            ctx.write::<u64>(addr, 3); // migrates the thread to node 0
            *w.lock() = ctx.node();
        });
        engine.run().unwrap();
        assert_eq!(*where_after_read.lock(), NodeId(1));
        assert_eq!(*where_after_write.lock(), NodeId(0));
        let stats = rt.stats().snapshot();
        assert_eq!(stats.page_transfers, 1);
        assert_eq!(stats.thread_migrations, 1);
    }

    /// Different DSM protocols can manage different memory areas of the same
    /// application simultaneously (per-allocation protocol attribute).
    #[test]
    fn different_protocols_per_allocation() {
        let (mut engine, rt, builtins) = setup(2);
        rt.set_default_protocol(builtins.li_hudak);
        let a_lh = rt.dsm_malloc(
            4096,
            DsmAttr::with_protocol(builtins.li_hudak).home(HomePolicy::Fixed(NodeId(0))),
        );
        let a_mt = rt.dsm_malloc(
            4096,
            DsmAttr::with_protocol(builtins.migrate_thread).home(HomePolicy::Fixed(NodeId(0))),
        );
        let end_node = StdArc::new(Mutex::new(NodeId(9)));

        let e = end_node.clone();
        rt.spawn_dsm_thread(NodeId(1), "worker", move |ctx| {
            // li_hudak page: replicated, thread stays on node 1.
            let _ = ctx.read::<u64>(a_lh);
            assert_eq!(ctx.node(), NodeId(1));
            // migrate_thread page: the access drags the thread to node 0.
            let _ = ctx.read::<u64>(a_mt);
            *e.lock() = ctx.node();
        });
        engine.run().unwrap();
        assert_eq!(*end_node.lock(), NodeId(0));
        assert_eq!(rt.protocols_in_use().len(), 2);
    }

    /// Thread-safety: many threads on several nodes hammer the same page
    /// under a lock; the final counter equals the number of increments
    /// (no lost updates under li_hudak).
    #[test]
    fn li_hudak_concurrent_lock_protected_increments() {
        let (mut engine, rt, builtins) = setup(4);
        rt.set_default_protocol(builtins.li_hudak);
        let addr = rt.dsm_malloc(4096, DsmAttr::default().home(HomePolicy::Fixed(NodeId(0))));
        let lock = rt.create_lock(Some(NodeId(0)));
        let per_thread = 5u64;
        let threads = 8usize;
        let b = rt.create_barrier(threads, None);
        let finals = StdArc::new(Mutex::new(Vec::new()));

        for t in 0..threads {
            let finals = finals.clone();
            rt.spawn_dsm_thread(NodeId(t % 4), format!("inc{t}"), move |ctx| {
                for _ in 0..per_thread {
                    ctx.dsm_lock(lock);
                    let v = ctx.read::<u64>(addr);
                    ctx.compute(SimDuration::from_micros(3));
                    ctx.write::<u64>(addr, v + 1);
                    ctx.dsm_unlock(lock);
                }
                ctx.dsm_barrier(b);
                ctx.dsm_lock(lock);
                finals.lock().push(ctx.read::<u64>(addr));
                ctx.dsm_unlock(lock);
            });
        }
        engine.run().unwrap();
        let finals = finals.lock();
        assert_eq!(finals.len(), threads);
        for &v in finals.iter() {
            assert_eq!(v, per_thread * threads as u64, "no lost updates");
        }
    }

    /// The same program runs unchanged on every network profile (portability).
    #[test]
    fn same_program_runs_on_every_network_profile() {
        for profile in dsmpm2_pm2::profiles::all() {
            let engine = Engine::new();
            let rt = DsmRuntime::new(&engine, dsmpm2_core::Pm2Config::new(2, profile.clone()));
            let builtins = register_builtin_protocols(&rt);
            rt.set_default_protocol(builtins.li_hudak);
            let addr = rt.dsm_malloc(4096, DsmAttr::default().home(HomePolicy::Fixed(NodeId(0))));
            let b = rt.create_barrier(2, None);
            let ok = StdArc::new(Mutex::new(false));
            rt.spawn_dsm_thread(NodeId(0), "w", move |ctx| {
                ctx.write::<u64>(addr, 5);
                ctx.dsm_barrier(b);
            });
            let ok2 = ok.clone();
            rt.spawn_dsm_thread(NodeId(1), "r", move |ctx| {
                ctx.dsm_barrier(b);
                *ok2.lock() = ctx.read::<u64>(addr) == 5;
            });
            let mut engine = engine;
            engine.run().unwrap();
            assert!(*ok.lock(), "failed on {}", profile.name);
        }
    }
}

#[cfg(test)]
mod extension_tests {
    use super::*;
    use dsmpm2_core::{DsmAttr, DsmRuntime, Engine, HomePolicy, NodeId, Pm2Config, SimDuration};
    use parking_lot::Mutex;
    use std::sync::Arc as StdArc;

    fn setup(nodes: usize) -> (Engine, DsmRuntime, BuiltinProtocols, ExtensionProtocols) {
        let engine = Engine::new();
        let rt = DsmRuntime::new(&engine, Pm2Config::bip_myrinet(nodes));
        let (builtins, extensions) = register_all_protocols(&rt);
        (engine, rt, builtins, extensions)
    }

    #[test]
    fn extension_registration_exposes_names() {
        let (_engine, rt, _b, ext) = setup(2);
        assert_eq!(
            rt.protocol_by_name("li_hudak_fixed"),
            Some(ext.li_hudak_fixed)
        );
        assert_eq!(rt.protocol_by_name("entry_sw"), Some(ext.entry_sw));
        assert_eq!(rt.protocol_by_name("hlrc_notices"), Some(ext.hlrc_notices));
        assert_eq!(ext.by_name("entry_sw"), Some(ext.entry_sw));
        assert_eq!(ext.by_name("nope"), None);
        assert!(format!("{ext:?}").contains("ExtensionProtocols"));
    }

    /// li_hudak_fixed: same observable behaviour as li_hudak (sequential
    /// consistency, read replication, write ownership migration), but every
    /// request from a node that is not the manager goes through the manager.
    #[test]
    fn li_hudak_fixed_replicates_reads_and_migrates_write_ownership() {
        let (mut engine, rt, _b, ext) = setup(3);
        rt.set_default_protocol(ext.li_hudak_fixed);
        let addr = rt.dsm_malloc(4096, DsmAttr::default().home(HomePolicy::Fixed(NodeId(0))));
        let b = rt.create_barrier(3, None);
        let results = StdArc::new(Mutex::new(Vec::new()));

        for node in 0..3usize {
            let results = results.clone();
            rt.spawn_dsm_thread(NodeId(node), format!("t{node}"), move |ctx| {
                let v0 = ctx.read::<u64>(addr);
                ctx.dsm_barrier(b);
                if node == 2 {
                    ctx.write::<u64>(addr, 31);
                }
                ctx.dsm_barrier(b);
                let v1 = ctx.read::<u64>(addr);
                results.lock().push((v0, v1));
            });
        }
        engine.run().unwrap();
        for &(v0, v1) in results.lock().iter() {
            assert_eq!(v0, 0);
            assert_eq!(v1, 31, "all readers observe the single writer's value");
        }
        // Ownership ended up at node 2; the manager (node 0) records it.
        assert!(rt.page_table(NodeId(2)).get(addr.page()).owned);
        assert_eq!(
            rt.page_table(NodeId(0)).get(addr.page()).prob_owner,
            NodeId(2),
            "the fixed manager tracks the current owner"
        );
        // Non-manager nodes keep routing through the manager.
        assert_eq!(
            rt.page_table(NodeId(1)).get(addr.page()).prob_owner,
            NodeId(0)
        );
    }

    /// li_hudak_fixed routes requests through the manager: when the owner is
    /// not the manager, requests take one forwarding hop.
    #[test]
    fn li_hudak_fixed_routes_through_the_manager() {
        let (mut engine, rt, _b, ext) = setup(3);
        rt.set_default_protocol(ext.li_hudak_fixed);
        let addr = rt.dsm_malloc(4096, DsmAttr::default().home(HomePolicy::Fixed(NodeId(0))));
        let b = rt.create_barrier(2, None);

        // Node 1 takes write ownership away from the manager, then node 2
        // reads: its request must go to the manager (node 0) and be forwarded
        // to the owner (node 1).
        rt.spawn_dsm_thread(NodeId(1), "owner", move |ctx| {
            ctx.write::<u64>(addr, 77);
            ctx.dsm_barrier(b);
        });
        let seen = StdArc::new(Mutex::new(0u64));
        let s = seen.clone();
        rt.spawn_dsm_thread(NodeId(2), "reader", move |ctx| {
            ctx.dsm_barrier(b);
            *s.lock() = ctx.read::<u64>(addr);
        });
        engine.run().unwrap();
        assert_eq!(*seen.lock(), 77);
        let stats = rt.stats().snapshot();
        assert!(
            stats.request_forwards >= 1,
            "the manager must have forwarded the reader's request to the owner"
        );
    }

    /// entry_sw: data bound to a lock is made consistent by acquiring that
    /// lock and published by releasing it.
    #[test]
    fn entry_consistency_publishes_bound_region_at_release() {
        let (mut engine, rt, _b, ext) = setup(3);
        rt.set_default_protocol(ext.entry_sw);
        let addr = rt.dsm_malloc(4096, DsmAttr::default().home(HomePolicy::Fixed(NodeId(0))));
        let lock = rt.create_lock(Some(NodeId(0)));
        ext.entry.bind(lock, addr, 4096);
        assert_eq!(ext.entry.bound_pages(lock), vec![addr.page()]);
        let b = rt.create_barrier(3, None);
        let observed = StdArc::new(Mutex::new(Vec::new()));

        // Node 1 writes under the lock, then nodes 0 and 2 read under the lock.
        rt.spawn_dsm_thread(NodeId(1), "writer", move |ctx| {
            ctx.dsm_lock(lock);
            ctx.write::<u64>(addr, 4242);
            ctx.dsm_unlock(lock);
            ctx.dsm_barrier(b);
        });
        for node in [0usize, 2] {
            let observed = observed.clone();
            rt.spawn_dsm_thread(NodeId(node), format!("reader{node}"), move |ctx| {
                ctx.dsm_barrier(b);
                ctx.dsm_lock(lock);
                observed.lock().push(ctx.read::<u64>(addr));
                ctx.dsm_unlock(lock);
            });
        }
        engine.run().unwrap();
        let observed = observed.lock();
        assert_eq!(observed.len(), 2);
        for &v in observed.iter() {
            assert_eq!(
                v, 4242,
                "acquiring the lock makes the bound region consistent"
            );
        }
        let stats = rt.stats().snapshot();
        assert!(stats.diffs_sent >= 1, "release publishes through a diff");
        assert!(stats.twins_created >= 1);
    }

    /// entry_sw: the guarded data is brought in at acquire time, so the
    /// accesses inside the critical section do not fault.
    #[test]
    fn entry_consistency_prefetches_at_acquire() {
        let (mut engine, rt, _b, ext) = setup(2);
        rt.set_default_protocol(ext.entry_sw);
        let addr = rt.dsm_malloc(4096, DsmAttr::default().home(HomePolicy::Fixed(NodeId(0))));
        let lock = rt.create_lock(Some(NodeId(0)));
        ext.entry.bind(lock, addr, 4096);
        let faults_inside = StdArc::new(Mutex::new(0u64));

        let f = faults_inside.clone();
        let rt2 = rt.clone();
        rt.spawn_dsm_thread(NodeId(1), "writer", move |ctx| {
            ctx.dsm_lock(lock);
            let before = rt2.stats().snapshot().total_faults();
            ctx.write::<u64>(addr, 9);
            ctx.write::<u64>(addr.add(8), 10);
            let after = rt2.stats().snapshot().total_faults();
            ctx.dsm_unlock(lock);
            *f.lock() = after - before;
        });
        engine.run().unwrap();
        assert_eq!(
            *faults_inside.lock(),
            0,
            "no page fault inside the critical section: the acquire prefetched the bound page"
        );
    }

    /// entry_sw: an access to a bound page outside the guarding lock still
    /// works (it falls back to a home-based fetch).
    #[test]
    fn entry_consistency_tolerates_unguarded_access() {
        let (mut engine, rt, _b, ext) = setup(2);
        rt.set_default_protocol(ext.entry_sw);
        let addr = rt.dsm_malloc(4096, DsmAttr::default().home(HomePolicy::Fixed(NodeId(0))));
        let lock = rt.create_lock(Some(NodeId(0)));
        ext.entry.bind(lock, addr, 4096);
        let b = rt.create_barrier(2, None);
        let seen = StdArc::new(Mutex::new(0u32));

        rt.spawn_dsm_thread(NodeId(0), "home-writer", move |ctx| {
            ctx.write::<u32>(addr, 5);
            ctx.dsm_barrier(b);
        });
        let s = seen.clone();
        rt.spawn_dsm_thread(NodeId(1), "unguarded-reader", move |ctx| {
            ctx.dsm_barrier(b);
            *s.lock() = ctx.read::<u32>(addr);
        });
        engine.run().unwrap();
        assert_eq!(*seen.lock(), 5);
    }

    /// hlrc_notices: no eager invalidation is ever sent; a stale copy is only
    /// refreshed when its holder synchronizes on the lock.
    #[test]
    fn hlrc_is_lazy_but_consistent_after_acquire() {
        let (mut engine, rt, _b, ext) = setup(3);
        rt.set_default_protocol(ext.hlrc_notices);
        let addr = rt.dsm_malloc(4096, DsmAttr::default().home(HomePolicy::Fixed(NodeId(0))));
        let lock = rt.create_lock(Some(NodeId(0)));
        let b = rt.create_barrier(3, None);
        let observed = StdArc::new(Mutex::new((0u64, 0u64)));

        // Node 2 takes a read copy first, then node 1 writes under the lock.
        let obs = observed.clone();
        rt.spawn_dsm_thread(NodeId(2), "late-reader", move |ctx| {
            let before = ctx.read::<u64>(addr); // stale copy taken
            ctx.dsm_barrier(b);
            ctx.dsm_barrier(b); // writer has released by now
                                // Without synchronizing, the stale copy is still visible (lazy).
            let still_stale = ctx.read::<u64>(addr);
            assert_eq!(still_stale, before, "no eager invalidation reached us");
            ctx.dsm_lock(lock);
            let after = ctx.read::<u64>(addr);
            ctx.dsm_unlock(lock);
            *obs.lock() = (before, after);
        });
        rt.spawn_dsm_thread(NodeId(1), "writer", move |ctx| {
            ctx.dsm_barrier(b);
            ctx.dsm_lock(lock);
            ctx.write::<u64>(addr, 1001);
            ctx.dsm_unlock(lock);
            ctx.dsm_barrier(b);
        });
        rt.spawn_dsm_thread(NodeId(0), "home", move |ctx| {
            ctx.dsm_barrier(b);
            ctx.dsm_barrier(b);
        });
        engine.run().unwrap();
        let (before, after) = *observed.lock();
        assert_eq!(before, 0);
        assert_eq!(
            after, 1001,
            "the acquire consumed the write notice and refetched"
        );
        let stats = rt.stats().snapshot();
        assert_eq!(
            stats.invalidations, 0,
            "lazy release consistency sends no invalidation messages"
        );
        assert!(stats.diffs_sent >= 1);
        assert!(ext.hlrc.retained_notices() >= 1);
    }

    /// hlrc_notices vs hbrc_mw: on a producer/consumer pattern where a third
    /// node never resynchronizes, the lazy protocol sends strictly fewer
    /// invalidations (none at all).
    #[test]
    fn hlrc_sends_fewer_invalidations_than_eager_home_based_rc() {
        fn run(proto_name: &'static str) -> u64 {
            let engine = Engine::new();
            let rt = DsmRuntime::new(&engine, Pm2Config::bip_myrinet(3));
            let (builtins, extensions) = register_all_protocols(&rt);
            let proto = builtins
                .by_name(proto_name)
                .or_else(|| extensions.by_name(proto_name))
                .unwrap();
            rt.set_default_protocol(proto);
            let addr = rt.dsm_malloc(4096, DsmAttr::default().home(HomePolicy::Fixed(NodeId(0))));
            let lock = rt.create_lock(Some(NodeId(0)));
            let b = rt.create_barrier(3, None);
            // Node 2 takes a copy and never synchronizes again.
            rt.spawn_dsm_thread(NodeId(2), "bystander", move |ctx| {
                let _ = ctx.read::<u64>(addr);
                ctx.dsm_barrier(b);
                ctx.compute(SimDuration::from_micros(500));
            });
            // Node 1 repeatedly updates the shared datum under the lock.
            rt.spawn_dsm_thread(NodeId(1), "producer", move |ctx| {
                ctx.dsm_barrier(b);
                for i in 0..5u64 {
                    ctx.dsm_lock(lock);
                    ctx.write::<u64>(addr, i);
                    ctx.dsm_unlock(lock);
                }
            });
            rt.spawn_dsm_thread(NodeId(0), "home", move |ctx| {
                ctx.dsm_barrier(b);
            });
            let mut engine = engine;
            engine.run().unwrap();
            rt.stats().snapshot().invalidations
        }
        let eager = run("hbrc_mw");
        let lazy = run("hlrc_notices");
        assert!(eager >= 1, "the eager protocol invalidates the bystander");
        assert_eq!(lazy, 0, "the lazy protocol never invalidates anybody");
    }

    /// The extension protocols produce the same application results as the
    /// built-in ones on a lock-protected shared counter.
    #[test]
    fn extension_protocols_agree_with_builtins_on_a_shared_counter() {
        fn run(select: impl Fn(&BuiltinProtocols, &ExtensionProtocols) -> ProtocolId) -> u64 {
            let engine = Engine::new();
            let rt = DsmRuntime::new(&engine, Pm2Config::sisci_sci(4));
            let (builtins, extensions) = register_all_protocols(&rt);
            rt.set_default_protocol(select(&builtins, &extensions));
            let addr = rt.dsm_malloc(4096, DsmAttr::default().home(HomePolicy::Fixed(NodeId(0))));
            let lock = rt.create_lock(Some(NodeId(0)));
            extensions.entry.bind(lock, addr, 4096);
            let parties = 4usize;
            let b = rt.create_barrier(parties, None);
            let out = StdArc::new(Mutex::new(0u64));
            for t in 0..parties {
                let out = out.clone();
                rt.spawn_dsm_thread(NodeId(t), format!("inc{t}"), move |ctx| {
                    for _ in 0..3 {
                        ctx.dsm_lock(lock);
                        let v = ctx.read::<u64>(addr);
                        ctx.write::<u64>(addr, v + 1);
                        ctx.dsm_unlock(lock);
                    }
                    ctx.dsm_barrier(b);
                    if t == 0 {
                        ctx.dsm_lock(lock);
                        *out.lock() = ctx.read::<u64>(addr);
                        ctx.dsm_unlock(lock);
                    }
                });
            }
            let mut engine = engine;
            engine.run().unwrap();
            let v = *out.lock();
            v
        }
        let expected = 12;
        assert_eq!(run(|b, _| b.li_hudak), expected);
        assert_eq!(run(|_, e| e.li_hudak_fixed), expected);
        assert_eq!(run(|_, e| e.entry_sw), expected);
        assert_eq!(run(|_, e| e.hlrc_notices), expected);
    }
}
