//! `li_hudak_fixed` — sequential consistency, MRSW, *fixed* distributed manager.
//!
//! The paper's page manager was explicitly "designed to be generic enough so
//! that it could be exploited to implement protocols which need a fixed page
//! manager, as well as protocols based on a dynamic page manager" (§2.2,
//! citing the Li & Hudak classification). The built-in `li_hudak` protocol
//! uses the *dynamic* distributed manager (probable-owner chains with path
//! compression); this protocol is the *fixed* distributed manager alternative
//! built from the same library routines:
//!
//! * every page has a fixed manager — its home node — which always knows the
//!   current owner;
//! * faulting nodes always send their requests to the manager, which forwards
//!   them to the owner (one extra hop when the manager is not the owner, but
//!   no chains of unbounded length);
//! * ownership and the copyset migrate on write faults exactly as in
//!   `li_hudak`; the manager updates its owner record whenever it forwards a
//!   write request or serves one itself.
//!
//! Comparing it against `li_hudak` on the same workloads is exactly the kind
//! of protocol experiment the platform is designed for (see the
//! `ablations` benchmark binary).

use dsmpm2_core::protolib;
use dsmpm2_core::{
    Access, DsmProtocol, DsmThreadCtx, FaultInfo, Invalidation, LockId, PageRequest, PageTransfer,
    ServerCtx,
};

/// The `li_hudak_fixed` protocol (fixed distributed manager MRSW).
#[derive(Debug, Default)]
pub struct LiHudakFixed;

impl LiHudakFixed {
    /// Create the protocol.
    pub fn new() -> Self {
        LiHudakFixed
    }
}

impl DsmProtocol for LiHudakFixed {
    fn name(&self) -> &str {
        "li_hudak_fixed"
    }

    fn read_fault_handler(&self, ctx: &mut DsmThreadCtx<'_, '_>, fault: FaultInfo) {
        let rt = ctx.runtime().clone();
        let node = ctx.node();
        // Uncontended remote reads go one-sided straight to the fixed
        // manager's frame; any refusal falls back to the classic request.
        if rt.tuning().one_sided_reads && protolib::one_sided_read(ctx, fault.page, fault.line) {
            return;
        }
        // Non-manager nodes keep their probable-owner hint pointed at the
        // manager (see `receive_page_server`), so the generic fetch routine
        // naturally routes the request through the fixed manager.
        protolib::request_unit_and_wait(
            ctx.pm2.sim,
            node,
            &rt,
            fault.page,
            fault.line,
            Access::Read,
        );
    }

    fn write_fault_handler(&self, ctx: &mut DsmThreadCtx<'_, '_>, fault: FaultInfo) {
        let rt = ctx.runtime().clone();
        let node = ctx.node();
        protolib::request_unit_and_wait(
            ctx.pm2.sim,
            node,
            &rt,
            fault.page,
            fault.line,
            Access::Write,
        );
    }

    fn read_server(&self, ctx: &mut ServerCtx<'_>, req: PageRequest) {
        let rt = ctx.runtime.clone();
        let node = ctx.local_node;
        protolib::defer_while_fetching(ctx.sim, node, &rt, &req);
        let owned = rt.page_table(node).read_at(req.page, req.line, |e| e.owned);
        let home = rt.page_meta(req.page).home;
        if owned {
            protolib::serve_read_copy(ctx.sim, node, &rt, &req);
        } else if node == home {
            // We are the manager but not the owner: forward to the recorded
            // owner. Read requests do not change ownership, so the record is
            // left untouched.
            protolib::forward_request(ctx.sim, node, &rt, &req);
        } else {
            // Stale request (ownership moved away between the manager's
            // forward and our receipt): bounce it back through the manager.
            rt.send_page_request(ctx.sim, node, home, req);
        }
    }

    fn write_server(&self, ctx: &mut ServerCtx<'_>, req: PageRequest) {
        let rt = ctx.runtime.clone();
        let node = ctx.local_node;
        protolib::defer_while_fetching(ctx.sim, node, &rt, &req);
        let owned = rt.page_table(node).read_at(req.page, req.line, |e| e.owned);
        let home = rt.page_meta(req.page).home;
        if owned {
            // Serving transfers ownership; `serve_write_transfer` records the
            // requester as the new probable owner, which on the manager node
            // is precisely the manager's owner record.
            protolib::serve_write_transfer(ctx.sim, node, &rt, &req);
        } else if node == home {
            // Manager, not owner: forward to the owner and update the owner
            // record to the requester (the transfer is now in flight to it).
            protolib::forward_request(ctx.sim, node, &rt, &req);
        } else {
            rt.send_page_request(ctx.sim, node, home, req);
        }
    }

    fn invalidate_server(&self, ctx: &mut ServerCtx<'_>, inv: Invalidation) {
        let rt = ctx.runtime.clone();
        let node = ctx.local_node;
        let home = rt.page_meta(inv.page).home;
        protolib::apply_invalidation(ctx.sim, node, &rt, &inv);
        // Fixed manager: ordinary nodes keep routing through the manager; the
        // manager itself keeps the true owner recorded by the invalidation.
        if node != home {
            rt.page_table(node)
                .update_at(inv.page, inv.line, |e| e.prob_owner = home);
        }
    }

    fn receive_page_server(&self, ctx: &mut ServerCtx<'_>, transfer: PageTransfer) {
        let rt = ctx.runtime.clone();
        let node = ctx.local_node;
        let home = rt.page_meta(transfer.page).home;
        let page = transfer.page;
        let line = transfer.line;
        if transfer.grant == Access::Write {
            // Becoming the single writer: install, invalidate every other
            // copy, then grant write access locally (same sequence as
            // `li_hudak`).
            let (line_offset, line_size) =
                rt.page_table(node).read_at(page, line, |e| e.line_span());
            if line_size == dsmpm2_core::PAGE_SIZE {
                rt.frames(node).install(page, transfer.data.clone());
            } else {
                rt.frames(node)
                    .install_line(page, line, line_offset, &transfer.data);
            }
            let targets: Vec<_> = transfer
                .copyset
                .iter()
                .copied()
                .filter(|&n| n != node)
                .collect();
            protolib::invalidate_copyset_and_wait_at(
                ctx.sim,
                node,
                &rt,
                page,
                line,
                &targets,
                Some(node),
                transfer.version,
            );
            rt.page_table(node).update_at(page, line, |e| {
                e.access = Access::Write;
                e.owned = true;
                e.prob_owner = node;
                e.queue_tail = None;
                e.copyset.clear();
                e.copyset.insert(node);
                e.version = transfer.version;
                e.owner_version = e.owner_version.max(transfer.version);
                e.pending_fetch = false;
            });
            ctx.sim.charge(rt.costs().install_overhead());
            protolib::notify_home_acquired_at(ctx.sim, node, &rt, page, line, transfer.version);
            rt.page_table(node)
                .waiters_at(page, line)
                .notify_all(&ctx.sim.ctl(), dsmpm2_core::SimDuration::ZERO);
        } else {
            protolib::install_received_page(ctx.sim, node, &rt, &transfer);
        }
        // Fixed distributed manager: a non-manager node always sends its next
        // request to the manager, never along dynamic ownership hints.
        if node != home && !rt.page_table(node).read_at(page, line, |e| e.owned) {
            rt.page_table(node)
                .update_at(page, line, |e| e.prob_owner = home);
        }
    }

    fn lock_acquire(&self, _ctx: &mut DsmThreadCtx<'_, '_>, _lock: LockId) {
        // Sequential consistency needs no action at synchronization points.
    }

    fn lock_release(&self, _ctx: &mut DsmThreadCtx<'_, '_>, _lock: LockId) {}

    fn supports_subpage(&self) -> bool {
        // Every routine above routes at the faulting line; independent lines
        // of one page have fully independent owners, copysets and queues.
        true
    }

    fn one_sided_reads(&self) -> bool {
        // MRSW with a fixed manager: whenever the manager's entry is
        // readable, owned and uncontended, its frame holds the authoritative
        // copy and may be handed out read-only.
        true
    }
}
