//! `li_hudak` — sequential consistency, MRSW, dynamic distributed manager.
//!
//! The protocol is a multithreaded adaptation (following Mueller's
//! DSM-Threads variant) of the dynamic distributed manager algorithm of Li &
//! Hudak: pages are replicated on read faults and migrate (together with
//! ownership and the copyset) on write faults; requests are routed along
//! probable-owner chains. The "single writer" is a *node*, not a thread: all
//! threads of the owning node share the same writable copy and may write it
//! concurrently.

use dsmpm2_core::protolib;
use dsmpm2_core::{
    Access, DsmProtocol, DsmThreadCtx, FaultInfo, Invalidation, LockId, PageRequest, PageTransfer,
    ServerCtx,
};

/// The `li_hudak` protocol (see Table 2 of the paper).
#[derive(Debug, Default)]
pub struct LiHudak;

impl LiHudak {
    /// Create the protocol.
    pub fn new() -> Self {
        LiHudak
    }
}

impl DsmProtocol for LiHudak {
    fn name(&self) -> &str {
        "li_hudak"
    }

    fn read_fault_handler(&self, ctx: &mut DsmThreadCtx<'_, '_>, fault: FaultInfo) {
        let rt = ctx.runtime().clone();
        let node = ctx.node();
        protolib::request_page_and_wait(ctx.pm2.sim, node, &rt, fault.page, Access::Read);
    }

    fn write_fault_handler(&self, ctx: &mut DsmThreadCtx<'_, '_>, fault: FaultInfo) {
        let rt = ctx.runtime().clone();
        let node = ctx.node();
        protolib::request_page_and_wait(ctx.pm2.sim, node, &rt, fault.page, Access::Write);
    }

    fn read_server(&self, ctx: &mut ServerCtx<'_>, req: PageRequest) {
        let rt = ctx.runtime.clone();
        let node = ctx.local_node;
        protolib::defer_while_fetching(ctx.sim, node, &rt, &req);
        if rt.page_table(node).read(req.page, |e| e.owned) {
            protolib::serve_read_copy(ctx.sim, node, &rt, &req);
        } else {
            protolib::forward_request(ctx.sim, node, &rt, &req);
        }
    }

    fn write_server(&self, ctx: &mut ServerCtx<'_>, req: PageRequest) {
        let rt = ctx.runtime.clone();
        let node = ctx.local_node;
        protolib::defer_while_fetching(ctx.sim, node, &rt, &req);
        if rt.page_table(node).read(req.page, |e| e.owned) {
            protolib::serve_write_transfer(ctx.sim, node, &rt, &req);
        } else {
            protolib::forward_request(ctx.sim, node, &rt, &req);
        }
    }

    fn invalidate_server(&self, ctx: &mut ServerCtx<'_>, inv: Invalidation) {
        let rt = ctx.runtime.clone();
        let node = ctx.local_node;
        protolib::apply_invalidation(ctx.sim, node, &rt, &inv);
    }

    fn receive_page_server(&self, ctx: &mut ServerCtx<'_>, transfer: PageTransfer) {
        let rt = ctx.runtime.clone();
        let node = ctx.local_node;
        if transfer.grant == Access::Write {
            // Becoming the single writer: install the data, invalidate every
            // other copy, and only then grant write access to local threads.
            rt.frames(node)
                .install(transfer.page, transfer.data.clone());
            let targets: Vec<_> = transfer
                .copyset
                .iter()
                .copied()
                .filter(|&n| n != node)
                .collect();
            protolib::invalidate_copyset_and_wait(
                ctx.sim,
                node,
                &rt,
                transfer.page,
                &targets,
                Some(node),
                transfer.version,
            );
            rt.page_table(node).update(transfer.page, |e| {
                e.access = Access::Write;
                e.owned = true;
                e.prob_owner = node;
                e.queue_tail = None;
                e.copyset.clear();
                e.copyset.insert(node);
                e.version = transfer.version;
                e.owner_version = e.owner_version.max(transfer.version);
                e.pending_fetch = false;
            });
            ctx.sim.charge(rt.costs().install_overhead());
            protolib::notify_home_acquired(ctx.sim, node, &rt, transfer.page, transfer.version);
            rt.page_table(node)
                .waiters(transfer.page)
                .notify_all(&ctx.sim.ctl(), dsmpm2_core::SimDuration::ZERO);
        } else {
            protolib::install_received_page(ctx.sim, node, &rt, &transfer);
        }
    }

    fn lock_acquire(&self, _ctx: &mut DsmThreadCtx<'_, '_>, _lock: LockId) {
        // Sequential consistency needs no action at synchronization points.
    }

    fn lock_release(&self, _ctx: &mut DsmThreadCtx<'_, '_>, _lock: LockId) {}
}
