//! `java_ic` and `java_pf` — Java consistency (Java Memory Model), home-based,
//! multiple writers, on-the-fly diff recording.
//!
//! These two protocols implement the consistency specified by the Java Memory
//! Model for the Hyperion compiled-Java runtime: objects live on their home
//! node ("main memory"), threads keep node-level cached copies, a thread's
//! cache is flushed when it enters a monitor, and its local modifications are
//! transmitted to main memory when it exits a monitor. Modifications are
//! recorded on the fly, with object-field granularity, by the `put` access
//! primitive.
//!
//! The two protocols differ only in how accesses to non-local objects are
//! *detected*:
//!
//! * `java_ic` — Hyperion's `get`/`put` primitives perform an explicit
//!   **inline check** for locality and call directly into the protocol,
//!   bypassing the page-fault mechanism entirely;
//! * `java_pf` — accesses go through the ordinary **page-fault** path; local
//!   accesses pay nothing, remote accesses pay the fault-detection cost.
//!
//! The object layer (crate `dsmpm2-hyperion`) selects the access path based
//! on the protocol name.

use dsmpm2_core::protolib;
use dsmpm2_core::{
    Access, ConsistencyModel, DsmProtocol, DsmThreadCtx, FaultInfo, Invalidation, LockId,
    PageRequest, PageTransfer, ServerCtx,
};

/// Which access-detection flavour a Java-consistency protocol instance uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JavaDetection {
    /// Explicit inline checks in `get`/`put` (`java_ic`).
    InlineCheck,
    /// Page faults (`java_pf`).
    PageFault,
}

/// Java-consistency protocol, parameterized by the access-detection flavour.
#[derive(Debug)]
pub struct JavaConsistency {
    detection: JavaDetection,
}

impl JavaConsistency {
    /// The `java_ic` protocol.
    pub fn inline_check() -> Self {
        JavaConsistency {
            detection: JavaDetection::InlineCheck,
        }
    }

    /// The `java_pf` protocol.
    pub fn page_fault() -> Self {
        JavaConsistency {
            detection: JavaDetection::PageFault,
        }
    }

    /// The access-detection flavour of this instance.
    pub fn detection(&self) -> JavaDetection {
        self.detection
    }

    /// Fetch the page holding an object into the local cache (writable,
    /// multiple writers), blocking until it is present. Shared by the fault
    /// handlers (`java_pf`) and by the Hyperion get/put miss path (`java_ic`).
    pub fn cache_page(ctx: &mut DsmThreadCtx<'_, '_>, page: dsmpm2_core::PageId) {
        let rt = ctx.runtime().clone();
        let node = ctx.node();
        protolib::request_page_and_wait(ctx.pm2.sim, node, &rt, page, Access::Write);
    }
}

impl DsmProtocol for JavaConsistency {
    fn name(&self) -> &str {
        match self.detection {
            JavaDetection::InlineCheck => "java_ic",
            JavaDetection::PageFault => "java_pf",
        }
    }

    fn records_writes(&self) -> bool {
        // Modifications reach main memory through the recorded ranges (the
        // `put` path); a plain write that skipped recording would be lost at
        // the next monitor entry when the cache is flushed.
        true
    }

    fn consistency(&self) -> ConsistencyModel {
        ConsistencyModel::Java
    }

    fn multiple_writers(&self) -> bool {
        // Recorded-write merging at the home: concurrent writers per page.
        true
    }

    fn read_fault_handler(&self, ctx: &mut DsmThreadCtx<'_, '_>, fault: FaultInfo) {
        Self::cache_page(ctx, fault.page);
    }

    fn write_fault_handler(&self, ctx: &mut DsmThreadCtx<'_, '_>, fault: FaultInfo) {
        Self::cache_page(ctx, fault.page);
    }

    fn read_server(&self, ctx: &mut ServerCtx<'_>, req: PageRequest) {
        let rt = ctx.runtime.clone();
        let node = ctx.local_node;
        protolib::serve_copy_from_home(ctx.sim, node, &rt, &req, Access::Write);
    }

    fn write_server(&self, ctx: &mut ServerCtx<'_>, req: PageRequest) {
        let rt = ctx.runtime.clone();
        let node = ctx.local_node;
        protolib::serve_copy_from_home(ctx.sim, node, &rt, &req, Access::Write);
    }

    fn invalidate_server(&self, ctx: &mut ServerCtx<'_>, inv: Invalidation) {
        let rt = ctx.runtime.clone();
        let node = ctx.local_node;
        // Push any pending recorded modifications before dropping the copy,
        // and wait for the home to integrate them before acknowledging.
        if rt.frames(node).has(inv.page) && rt.frames(node).has_recorded(inv.page) {
            // Same discipline as hbrc_mw: drop local access before the
            // blocking diff push, so concurrent local writes fault and
            // refetch instead of landing in the frame we are about to evict.
            rt.page_table(node)
                .set_access(inv.page, dsmpm2_core::Access::None);
            ctx.sim.charge(rt.costs().table_update());
            let diff = rt.frames(node).take_recorded_diff(inv.page);
            if !diff.is_empty() {
                let home = rt.page_meta(inv.page).home;
                rt.page_table(node)
                    .update(inv.page, |e| e.pending_acks += 1);
                rt.send_diff(ctx.sim, node, home, diff, true);
                let table = rt.page_table(node);
                let waiters = table.waiters(inv.page);
                waiters.wait_until(ctx.sim, || table.read(inv.page, |e| e.pending_acks == 0));
            }
        }
        protolib::apply_invalidation(ctx.sim, node, &rt, &inv);
    }

    fn receive_page_server(&self, ctx: &mut ServerCtx<'_>, transfer: PageTransfer) {
        let rt = ctx.runtime.clone();
        let node = ctx.local_node;
        protolib::install_received_page(ctx.sim, node, &rt, &transfer);
    }

    fn lock_acquire(&self, ctx: &mut DsmThreadCtx<'_, '_>, _lock: LockId) {
        // Monitor entry: flush the node's object cache so subsequent accesses
        // observe main memory (JMM cache-flush-on-monitor-enter rule). Home
        // pages are the reference copies and are kept.
        let rt = ctx.runtime().clone();
        let node = ctx.node();
        for page in rt.frames(node).pages() {
            if !rt.is_dsm_page(page) {
                continue;
            }
            if rt.page_meta(page).home == node {
                continue;
            }
            // Any unflushed modification must reach main memory before the
            // copy is dropped (conservative: exiting monitors normally did
            // this already).
            if rt.frames(node).has_recorded(page) {
                let diff = rt.frames(node).take_recorded_diff(page);
                if !diff.is_empty() {
                    let home = rt.page_meta(page).home;
                    rt.send_diff(ctx.pm2.sim, node, home, diff, false);
                }
            }
            rt.frames(node).evict(page);
            rt.page_table(node).update(page, |e| {
                e.access = Access::None;
                e.modified_since_release = false;
            });
        }
        ctx.pm2.sim.charge(rt.costs().table_update());
    }

    fn lock_release(&self, ctx: &mut DsmThreadCtx<'_, '_>, _lock: LockId) {
        // Monitor exit: transmit local modifications to main memory (the
        // Hyperion "main memory update" primitive), with field granularity.
        let rt = ctx.runtime().clone();
        let node = ctx.node();
        let modified: Vec<_> = rt
            .frames(node)
            .pages()
            .into_iter()
            .filter(|&p| rt.is_dsm_page(p) && rt.frames(node).has_recorded(p))
            .collect();
        protolib::flush_diffs_to_homes(ctx.pm2.sim, node, &rt, &modified, true);
    }
}
