//! `migrate_thread` — sequential consistency through thread migration.
//!
//! On a page fault (read or write) the faulting thread is simply migrated to
//! the node owning the page, as specified by the local page table (fixed
//! distributed manager: the owner is the page's home node and never changes).
//! Pages are never replicated and never move, so all threads that access a
//! non-local page end up executing on the owning node — which makes the
//! protocol extremely simple but very sensitive to the distribution of the
//! shared data, as the paper's TSP experiment (Figure 4) shows.

use dsmpm2_core::protolib;
use dsmpm2_core::{
    DsmProtocol, DsmThreadCtx, FaultInfo, Invalidation, LockId, PageRequest, PageTransfer,
    ServerCtx,
};

/// The `migrate_thread` protocol (Figure 3 of the paper).
#[derive(Debug, Default)]
pub struct MigrateThread;

impl MigrateThread {
    /// Create the protocol.
    pub fn new() -> Self {
        MigrateThread
    }
}

impl DsmProtocol for MigrateThread {
    fn name(&self) -> &str {
        "migrate_thread"
    }

    fn read_fault_handler(&self, ctx: &mut DsmThreadCtx<'_, '_>, fault: FaultInfo) {
        protolib::migrate_thread_to_page(ctx, fault.page);
    }

    fn write_fault_handler(&self, ctx: &mut DsmThreadCtx<'_, '_>, fault: FaultInfo) {
        protolib::migrate_thread_to_page(ctx, fault.page);
    }

    fn read_server(&self, _ctx: &mut ServerCtx<'_>, req: PageRequest) {
        panic!(
            "migrate_thread never requests pages, yet a read request for {} arrived",
            req.page
        );
    }

    fn write_server(&self, _ctx: &mut ServerCtx<'_>, req: PageRequest) {
        panic!(
            "migrate_thread never requests pages, yet a write request for {} arrived",
            req.page
        );
    }

    fn invalidate_server(&self, _ctx: &mut ServerCtx<'_>, inv: Invalidation) {
        panic!(
            "migrate_thread never replicates pages, yet an invalidation for {} arrived",
            inv.page
        );
    }

    fn receive_page_server(&self, _ctx: &mut ServerCtx<'_>, transfer: PageTransfer) {
        panic!(
            "migrate_thread never transfers pages, yet {} arrived",
            transfer.page
        );
    }

    fn lock_acquire(&self, _ctx: &mut DsmThreadCtx<'_, '_>, _lock: LockId) {}

    fn lock_release(&self, _ctx: &mut DsmThreadCtx<'_, '_>, _lock: LockId) {}
}
