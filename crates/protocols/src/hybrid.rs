//! Hybrid protocols built out of library routines (§2.3 of the paper).
//!
//! The paper's "mixed approach" combines existing library routines in an
//! ad-hoc way, e.g. page replication on read faults (as in `li_hudak`) with
//! thread migration on write faults (as in `migrate_thread`). This module
//! provides exactly that protocol, assembled with [`CustomProtocol::builder`]
//! — the same builder user code would use — to demonstrate that new protocols
//! need nothing beyond the public protocol-library API.

use std::sync::Arc;

use dsmpm2_core::protolib;
use dsmpm2_core::{Access, CustomProtocol, DsmProtocol};

/// Build the hybrid protocol: read faults replicate the page from its owner,
/// write faults migrate the faulting thread to the owner.
///
/// As the paper notes, the user is responsible for combining routines into a
/// *valid* protocol: this hybrid keeps writes sequentially consistent (they
/// all execute on the owning node) but read replicas are only refreshed when
/// they are re-fetched, so it is best suited to mostly-read shared data.
pub fn replicate_read_migrate_write() -> Arc<dyn DsmProtocol> {
    CustomProtocol::builder("hybrid_rw")
        .read_fault_handler(|ctx, fault| {
            let rt = ctx.runtime().clone();
            let node = ctx.node();
            protolib::request_page_and_wait(ctx.pm2.sim, node, &rt, fault.page, Access::Read);
        })
        .write_fault_handler(|ctx, fault| {
            let rt = ctx.runtime().clone();
            let node = ctx.node();
            let entry = rt.page_table(node).get(fault.page); // owned copy: the copyset is needed below
            if entry.owned {
                // The thread already executes on the owning node but the
                // owner's copy was downgraded to read-only when read replicas
                // were handed out: reclaim exclusive write access by
                // invalidating the replicas instead of migrating (migrating
                // to ourselves would fault forever).
                let targets: Vec<_> = entry
                    .copyset
                    .iter()
                    .copied()
                    .filter(|&n| n != node)
                    .collect();
                protolib::invalidate_copyset_and_wait(
                    ctx.pm2.sim,
                    node,
                    &rt,
                    fault.page,
                    &targets,
                    Some(node),
                    entry.version,
                );
                // Subtract only the invalidated replicas (a copy granted
                // during the invalidation wait must stay tracked).
                rt.page_table(node).update(fault.page, |e| {
                    e.access = Access::Write;
                    e.copyset.retain(|n| !targets.contains(n));
                    e.copyset.insert(node);
                });
                ctx.pm2.sim.charge(rt.costs().table_update());
            } else {
                protolib::migrate_thread_to_page(ctx, fault.page);
            }
        })
        .read_server(|ctx, req| {
            let rt = ctx.runtime.clone();
            let node = ctx.local_node;
            if rt.page_table(node).read(req.page, |e| e.owned) {
                protolib::serve_read_copy(ctx.sim, node, &rt, &req);
            } else {
                protolib::forward_request(ctx.sim, node, &rt, &req);
            }
        })
        .write_server(|ctx, req| {
            // Writes never generate requests (they migrate); a write request
            // indicates the protocol is being combined inconsistently.
            panic!(
                "hybrid_rw: unexpected write request for {} from {}",
                req.page, ctx.from_node
            );
        })
        .invalidate_server(|ctx, inv| {
            let rt = ctx.runtime.clone();
            let node = ctx.local_node;
            protolib::apply_invalidation(ctx.sim, node, &rt, &inv);
        })
        .receive_page_server(|ctx, transfer| {
            let rt = ctx.runtime.clone();
            let node = ctx.local_node;
            protolib::install_received_page(ctx.sim, node, &rt, &transfer);
        })
        .build()
}
