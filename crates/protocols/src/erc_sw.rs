//! `erc_sw` — eager release consistency, MRSW, dynamic distributed manager.
//!
//! Page management follows the same dynamic-distributed-manager scheme as
//! `li_hudak` (page replication on read faults, ownership migration on write
//! faults), but coherence actions are deferred to synchronization points:
//! copies of the pages written inside a critical section are invalidated
//! *eagerly at lock release* rather than at every write fault.

use dsmpm2_core::protolib;
use dsmpm2_core::{
    Access, ConsistencyModel, DsmProtocol, DsmThreadCtx, FaultInfo, Invalidation, LockId,
    PageRequest, PageTransfer, ServerCtx,
};

/// The `erc_sw` protocol (eager release consistency, single writer).
#[derive(Debug, Default)]
pub struct ErcSw;

impl ErcSw {
    /// Create the protocol.
    pub fn new() -> Self {
        ErcSw
    }
}

impl DsmProtocol for ErcSw {
    fn name(&self) -> &str {
        "erc_sw"
    }

    fn consistency(&self) -> ConsistencyModel {
        // Eager release consistency: writes propagate at release; an
        // unsynchronized conflicting access pair reads stale data.
        ConsistencyModel::Release
    }

    fn read_fault_handler(&self, ctx: &mut DsmThreadCtx<'_, '_>, fault: FaultInfo) {
        let rt = ctx.runtime().clone();
        let node = ctx.node();
        if rt.tuning().one_sided_reads && protolib::one_sided_read(ctx, fault.page, fault.line) {
            return;
        }
        protolib::request_unit_and_wait(
            ctx.pm2.sim,
            node,
            &rt,
            fault.page,
            fault.line,
            Access::Read,
        );
    }

    fn write_fault_handler(&self, ctx: &mut DsmThreadCtx<'_, '_>, fault: FaultInfo) {
        let rt = ctx.runtime().clone();
        let node = ctx.node();
        protolib::request_unit_and_wait(
            ctx.pm2.sim,
            node,
            &rt,
            fault.page,
            fault.line,
            Access::Write,
        );
    }

    fn read_server(&self, ctx: &mut ServerCtx<'_>, req: PageRequest) {
        let rt = ctx.runtime.clone();
        let node = ctx.local_node;
        protolib::defer_while_fetching(ctx.sim, node, &rt, &req);
        if rt.page_table(node).read_at(req.page, req.line, |e| e.owned) {
            protolib::serve_read_copy(ctx.sim, node, &rt, &req);
        } else {
            protolib::forward_request(ctx.sim, node, &rt, &req);
        }
    }

    fn write_server(&self, ctx: &mut ServerCtx<'_>, req: PageRequest) {
        let rt = ctx.runtime.clone();
        let node = ctx.local_node;
        protolib::defer_while_fetching(ctx.sim, node, &rt, &req);
        if rt.page_table(node).read_at(req.page, req.line, |e| e.owned) {
            protolib::serve_write_transfer(ctx.sim, node, &rt, &req);
        } else {
            protolib::forward_request(ctx.sim, node, &rt, &req);
        }
    }

    fn invalidate_server(&self, ctx: &mut ServerCtx<'_>, inv: Invalidation) {
        let rt = ctx.runtime.clone();
        let node = ctx.local_node;
        protolib::apply_invalidation(ctx.sim, node, &rt, &inv);
    }

    fn receive_page_server(&self, ctx: &mut ServerCtx<'_>, transfer: PageTransfer) {
        // Ownership (and the copyset) moves with the page, but the copies in
        // the copyset are NOT invalidated here: invalidation is deferred to
        // the next lock release.
        let rt = ctx.runtime.clone();
        let node = ctx.local_node;
        protolib::install_received_page(ctx.sim, node, &rt, &transfer);
    }

    fn lock_acquire(&self, _ctx: &mut DsmThreadCtx<'_, '_>, _lock: LockId) {
        // Eager RC pushes all coherence work to the release side.
    }

    fn lock_release(&self, ctx: &mut DsmThreadCtx<'_, '_>, _lock: LockId) {
        let rt = ctx.runtime().clone();
        let node = ctx.node();
        // Invalidate every remote copy of the pages this node wrote (and
        // owns) since the previous release. The invalidations of all pages
        // go out first and the acknowledgements are awaited together: the
        // rounds overlap instead of serializing page by page, and
        // invalidations for copies held by the same node leave in one
        // batched envelope when per-tick batching is enabled.
        let modified = rt.page_table(node).modified_units();
        let mut in_flight = Vec::new();
        for (page, line) in modified {
            let (owned, targets, version) = rt.page_table(node).read_at(page, line, |e| {
                let targets: Vec<_> = e.copyset.iter().copied().filter(|&n| n != node).collect();
                (e.owned, targets, e.version)
            });
            if !owned {
                // Ownership already moved away; the new owner is responsible.
                rt.page_table(node)
                    .update_at(page, line, |e| e.modified_since_release = false);
                continue;
            }
            protolib::send_copyset_invalidations_at(
                ctx.pm2.sim,
                node,
                &rt,
                page,
                line,
                &targets,
                Some(node),
                version,
            );
            // Remove the condemned copies from the copyset *before* any
            // blocking (there is no yield point since the send): a target
            // that refetches while the ack wait below blocks is re-inserted
            // by this node's server and survives, whereas a post-wait retain
            // could not tell that fresh copy apart from the original
            // membership and would leave it stale forever.
            rt.page_table(node).update_at(page, line, |e| {
                e.copyset.retain(|n| !targets.contains(n));
                e.copyset.insert(node);
            });
            in_flight.push((page, line));
        }
        for (page, line) in in_flight {
            protolib::await_invalidation_acks_at(ctx.pm2.sim, node, &rt, page, line);
            // The modified flag is only cleared once the acknowledgements
            // are in: the release is not complete until every stale copy is
            // provably gone.
            rt.page_table(node)
                .update_at(page, line, |e| e.modified_since_release = false);
        }
    }

    fn supports_subpage(&self) -> bool {
        // Fault routing, ownership migration and release-time invalidation
        // all operate on the faulting line; `modified_units` keeps the
        // release rounds line-scoped.
        true
    }

    fn one_sided_reads(&self) -> bool {
        // MRSW: the owner's frame is authoritative between releases, and the
        // fetch guard refuses whenever a release round is in flight
        // (pending acknowledgements) on the line.
        true
    }
}
