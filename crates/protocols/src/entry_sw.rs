//! `entry_sw` — entry consistency (Midway-style), built on the protocol
//! library toolbox.
//!
//! The paper positions DSM-PM2 as a platform on which the relaxed models of
//! the literature — release consistency (Munin, TreadMarks), *entry
//! consistency* (Midway), scope consistency (Brazos) — can be implemented and
//! compared. This protocol is the entry-consistency member of that family:
//!
//! * shared data is explicitly *bound* to synchronization objects
//!   ([`EntryConsistency::bind`]);
//! * acquiring a lock makes exactly the data bound to that lock consistent on
//!   the acquiring node (a home-based fetch of the bound pages);
//! * releasing a lock pushes the modifications made to the bound pages back
//!   to their home nodes (twin-based diffs);
//! * a barrier acts as a global synchronization: releases flush every
//!   modified bound page, and the matching acquire drops stale copies of all
//!   bound pages so they are re-fetched on demand.
//!
//! Accesses to bound pages outside the guarding lock are tolerated (they fall
//! back to an ordinary home-based fetch) but see only the data published by
//! the last release, exactly as in Midway.

use std::collections::{BTreeMap, BTreeSet};

use parking_lot::Mutex;

use dsmpm2_core::protolib;
use dsmpm2_core::{
    pages_covering, Access, ConsistencyModel, DsmAddr, DsmProtocol, DsmThreadCtx, FaultInfo,
    Invalidation, LockId, PageId, PageRequest, PageTransfer, ServerCtx,
};

/// The `entry_sw` protocol (entry consistency, single writer per lock).
///
/// Keep a handle on the value passed to `register_protocol` (it is an
/// `Arc<EntryConsistency>`) so that shared regions can be bound to their
/// guarding locks with [`EntryConsistency::bind`].
#[derive(Debug, Default)]
pub struct EntryConsistency {
    /// lock id → pages guarded by that lock.
    bindings: Mutex<BTreeMap<u64, BTreeSet<PageId>>>,
}

impl EntryConsistency {
    /// Create the protocol with no bindings.
    pub fn new() -> Self {
        EntryConsistency::default()
    }

    /// Bind the `bytes`-byte region starting at `addr` to `lock`: acquiring
    /// `lock` will make this region consistent, releasing it will publish the
    /// modifications made to it.
    pub fn bind(&self, lock: LockId, addr: DsmAddr, bytes: u64) {
        assert!(
            !lock.is_barrier(),
            "regions are bound to locks; barriers synchronize all bound regions"
        );
        let pages = pages_covering(addr, bytes);
        let mut bindings = self.bindings.lock();
        bindings.entry(lock.0).or_default().extend(pages);
    }

    /// The pages currently bound to `lock` (empty if none).
    pub fn bound_pages(&self, lock: LockId) -> Vec<PageId> {
        self.bindings
            .lock()
            .get(&lock.0)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Every page bound to any lock (used at barriers).
    pub fn all_bound_pages(&self) -> Vec<PageId> {
        let bindings = self.bindings.lock();
        let mut all = BTreeSet::new();
        for pages in bindings.values() {
            all.extend(pages.iter().copied());
        }
        all.into_iter().collect()
    }

    /// Pages affected by a synchronization event: the bound set of the lock,
    /// or every bound page when the event is a barrier.
    fn sync_pages(&self, lock: LockId) -> Vec<PageId> {
        if lock.is_barrier() {
            self.all_bound_pages()
        } else {
            self.bound_pages(lock)
        }
    }
}

impl DsmProtocol for EntryConsistency {
    fn name(&self) -> &str {
        "entry_sw"
    }

    fn consistency(&self) -> ConsistencyModel {
        // Entry consistency: only the lock bound to a region orders its
        // accesses; anything unguarded is a race.
        ConsistencyModel::Entry
    }

    fn read_fault_handler(&self, ctx: &mut DsmThreadCtx<'_, '_>, fault: FaultInfo) {
        // Unguarded access (or first access before any acquire): home-based
        // read fetch.
        let rt = ctx.runtime().clone();
        let node = ctx.node();
        protolib::request_page_and_wait(ctx.pm2.sim, node, &rt, fault.page, Access::Read);
    }

    fn write_fault_handler(&self, ctx: &mut DsmThreadCtx<'_, '_>, fault: FaultInfo) {
        let rt = ctx.runtime().clone();
        let node = ctx.node();
        let page = fault.page;
        if rt.frames(node).has(page) && rt.page_table(node).access(page) != Access::None {
            // Upgrade a present read copy in place (the guarding lock — or
            // the program's own synchronization — serializes writers).
            protolib::ensure_twin(ctx.pm2.sim, node, &rt, page);
            rt.page_table(node).set_access(page, Access::Write);
            ctx.pm2.sim.charge(rt.costs().table_update());
        } else {
            protolib::request_page_and_wait(ctx.pm2.sim, node, &rt, page, Access::Write);
            protolib::ensure_twin(ctx.pm2.sim, node, &rt, page);
        }
    }

    fn read_server(&self, ctx: &mut ServerCtx<'_>, req: PageRequest) {
        let rt = ctx.runtime.clone();
        let node = ctx.local_node;
        protolib::serve_copy_from_home(ctx.sim, node, &rt, &req, Access::Read);
    }

    fn write_server(&self, ctx: &mut ServerCtx<'_>, req: PageRequest) {
        let rt = ctx.runtime.clone();
        let node = ctx.local_node;
        protolib::serve_copy_from_home(ctx.sim, node, &rt, &req, Access::Write);
    }

    fn invalidate_server(&self, ctx: &mut ServerCtx<'_>, inv: Invalidation) {
        let rt = ctx.runtime.clone();
        let node = ctx.local_node;
        protolib::apply_invalidation(ctx.sim, node, &rt, &inv);
    }

    fn receive_page_server(&self, ctx: &mut ServerCtx<'_>, transfer: PageTransfer) {
        let rt = ctx.runtime.clone();
        let node = ctx.local_node;
        protolib::install_received_page(ctx.sim, node, &rt, &transfer);
    }

    fn lock_acquire(&self, ctx: &mut DsmThreadCtx<'_, '_>, lock: LockId) {
        let pages = self.sync_pages(lock);
        if pages.is_empty() {
            return;
        }
        let rt = ctx.runtime().clone();
        let node = ctx.node();
        for page in pages {
            let home = rt.page_meta(page).home;
            if home == node {
                // The home always holds the up-to-date reference copy.
                continue;
            }
            if lock.is_barrier() {
                // Barrier acquire: drop potentially stale copies; they are
                // re-fetched lazily on the next access.
                if rt.frames(node).has(page)
                    && !rt.page_table(node).read(page, |e| e.modified_since_release)
                {
                    rt.frames(node).evict(page);
                    rt.page_table(node).set_access(page, Access::None);
                    ctx.pm2.sim.charge(rt.costs().table_update());
                }
                continue;
            }
            // Lock acquire: bring the guarded data in *now*, writable, and
            // prepare the twin that release-time diffing needs. A local copy
            // holding unpublished modifications (unguarded writes) is kept —
            // it will be published at the next release.
            if !rt.page_table(node).read(page, |e| e.modified_since_release) {
                rt.frames(node).evict(page);
                rt.page_table(node).set_access(page, Access::None);
                ctx.pm2.sim.charge(rt.costs().table_update());
            }
            protolib::request_page_and_wait(ctx.pm2.sim, node, &rt, page, Access::Write);
            protolib::ensure_twin(ctx.pm2.sim, node, &rt, page);
        }
    }

    fn lock_release(&self, ctx: &mut DsmThreadCtx<'_, '_>, lock: LockId) {
        let pages = self.sync_pages(lock);
        if pages.is_empty() {
            return;
        }
        let rt = ctx.runtime().clone();
        let node = ctx.node();
        // Publish the modifications made to the synchronized pages.
        let modified: Vec<PageId> = pages
            .iter()
            .copied()
            .filter(|&p| {
                rt.page_table(node).contains(p)
                    && rt.page_table(node).read(p, |e| e.modified_since_release)
            })
            .collect();
        protolib::flush_diffs_to_homes(ctx.pm2.sim, node, &rt, &modified, false);
        // Downgrade: the next acquirer (possibly on another node) becomes the
        // writer of the guarded data.
        for page in pages {
            if rt.page_meta(page).home == node {
                continue;
            }
            if rt.page_table(node).access(page) == Access::Write {
                rt.page_table(node).set_access(page, Access::Read);
                ctx.pm2.sim.charge(rt.costs().table_update());
            }
        }
    }
}
