//! Smoke tests for the verify harness: the checkers find what they should
//! and stay silent where they must.

use dsmpm2_verify::scenario;
use dsmpm2_verify::{explore, run_scenario, ExploreConfig, FindingKind, RunConfig};

#[test]
fn locked_counter_is_clean_under_every_builtin() {
    for protocol in ["li_hudak", "erc_sw", "hbrc_mw", "java_pf", "migrate_thread"] {
        let scenario = scenario::locked_counter();
        let outcome = run_scenario(&scenario, &RunConfig::checked(protocol));
        assert_eq!(outcome.error, None, "{protocol}");
        let findings = outcome.all_findings(&scenario);
        assert!(findings.is_empty(), "{protocol}: {findings:?}");
        assert_eq!(outcome.final_words, vec![2], "{protocol}");
    }
}

#[test]
fn unsynchronized_sharing_is_a_race_under_relaxed_models_only() {
    let scenario = scenario::unsynced_pair();
    let relaxed = run_scenario(&scenario, &RunConfig::checked("erc_sw"));
    let races: Vec<_> = relaxed
        .race_findings()
        .into_iter()
        .filter(|f| f.kind == FindingKind::DataRace)
        .collect();
    assert!(!races.is_empty(), "erc_sw must report the race");

    let sc = run_scenario(&scenario, &RunConfig::checked("li_hudak"));
    let races: Vec<_> = sc
        .race_findings()
        .into_iter()
        .filter(|f| f.kind == FindingKind::DataRace)
        .collect();
    assert!(races.is_empty(), "li_hudak serializes accesses: {races:?}");
}

#[test]
fn explorer_finds_every_schedule_of_the_locked_counter_clean() {
    let scenario = scenario::locked_counter();
    let base = RunConfig::checked("li_hudak");
    let (stats, findings) = explore(
        &scenario,
        &base,
        &ExploreConfig {
            max_schedules: 64,
            preemption_budget: 1,
        },
        &mut |_path, outcome| outcome.all_findings(&scenario),
    );
    assert!(stats.schedules_run >= 2, "{stats:?}");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn stale_done_injection_is_gated_on_head() {
    let scenario = scenario::stale_done_injection();
    let outcome = run_scenario(&scenario, &RunConfig::checked("li_hudak"));
    assert_eq!(outcome.error, None);
    let findings = outcome.all_findings(&scenario);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn line_exclusive_writers_hold_per_line_exclusivity() {
    for protocol in ["li_hudak_fixed", "erc_sw", "hbrc_mw"] {
        let scenario = scenario::line_exclusive_writers();
        let outcome = run_scenario(&scenario, &RunConfig::checked(protocol));
        assert_eq!(outcome.error, None, "{protocol}");
        let findings = outcome.all_findings(&scenario);
        assert!(findings.is_empty(), "{protocol}: {findings:?}");
        assert_eq!(outcome.final_words_at, vec![2, 2], "{protocol}");
    }
    // A protocol without sub-page support clamps the scenario's granularity
    // back to whole pages: the page ping-pongs between the writers instead
    // of the lines staying put, but the final memory is identical and every
    // invariant still holds at the page unit.
    let scenario = scenario::line_exclusive_writers();
    let outcome = run_scenario(&scenario, &RunConfig::checked("li_hudak"));
    assert_eq!(outcome.error, None);
    let findings = outcome.all_findings(&scenario);
    assert!(findings.is_empty(), "{findings:?}");
    assert_eq!(outcome.final_words_at, vec![2, 2]);
}

#[test]
fn line_copyset_coverage_keeps_readers_visible_and_lines_independent() {
    for protocol in ["li_hudak_fixed", "erc_sw", "hbrc_mw"] {
        let scenario = scenario::line_copyset_coverage();
        let outcome = run_scenario(&scenario, &RunConfig::checked(protocol));
        assert_eq!(outcome.error, None, "{protocol}");
        let findings = outcome.all_findings(&scenario);
        assert!(findings.is_empty(), "{protocol}: {findings:?}");
        assert_eq!(outcome.final_words_at, vec![9, 40], "{protocol}");
        // Node 1 re-reads line 0 after the writer's barrier: the update
        // must have reached it (copyset coverage made the invalidation
        // land), and node 2's copy of line 1 must have survived line 0's
        // traffic untouched.
        assert_eq!(outcome.observed[1].last().copied(), Some(9), "{protocol}");
        assert_eq!(outcome.observed[2].last().copied(), Some(40), "{protocol}");
    }
}

#[test]
fn one_sided_read_race_never_escapes_coherence() {
    let scenario = scenario::one_sided_read_race();
    let outcome = run_scenario(&scenario, &RunConfig::checked("li_hudak_fixed"));
    assert_eq!(outcome.error, None);
    let findings = outcome.all_findings(&scenario);
    assert!(findings.is_empty(), "{findings:?}");
    assert_eq!(outcome.final_words, vec![5]);
    // After the closing barrier the reader must observe the writer's value:
    // a one-sided serve that handed out a copy without registering it in
    // the copyset would leave the reader pinned at the stale 3 forever.
    assert_eq!(outcome.observed[1].last().copied(), Some(5));
}

#[test]
fn explorer_finds_every_one_sided_race_schedule_coherent() {
    let scenario = scenario::one_sided_read_race();
    let base = RunConfig::checked("li_hudak_fixed");
    let (stats, findings) = explore(
        &scenario,
        &base,
        &ExploreConfig {
            max_schedules: 48,
            preemption_budget: 1,
        },
        &mut |_path, outcome| {
            let mut findings = outcome.all_findings(&scenario);
            if outcome.error.is_none() && outcome.observed[1].last().copied() != Some(5) {
                findings.push(dsmpm2_verify::Finding {
                    kind: FindingKind::FinalMemory,
                    detail: format!(
                        "reader's post-barrier read observed {:?}, expected 5",
                        outcome.observed[1].last()
                    ),
                });
            }
            findings
        },
    );
    assert!(stats.schedules_run >= 2, "{stats:?}");
    assert!(findings.is_empty(), "{findings:?}");
}
