//! Smoke tests for the verify harness: the checkers find what they should
//! and stay silent where they must.

use dsmpm2_verify::scenario;
use dsmpm2_verify::{explore, run_scenario, ExploreConfig, FindingKind, RunConfig};

#[test]
fn locked_counter_is_clean_under_every_builtin() {
    for protocol in ["li_hudak", "erc_sw", "hbrc_mw", "java_pf", "migrate_thread"] {
        let scenario = scenario::locked_counter();
        let outcome = run_scenario(&scenario, &RunConfig::checked(protocol));
        assert_eq!(outcome.error, None, "{protocol}");
        let findings = outcome.all_findings(&scenario);
        assert!(findings.is_empty(), "{protocol}: {findings:?}");
        assert_eq!(outcome.final_words, vec![2], "{protocol}");
    }
}

#[test]
fn unsynchronized_sharing_is_a_race_under_relaxed_models_only() {
    let scenario = scenario::unsynced_pair();
    let relaxed = run_scenario(&scenario, &RunConfig::checked("erc_sw"));
    let races: Vec<_> = relaxed
        .race_findings()
        .into_iter()
        .filter(|f| f.kind == FindingKind::DataRace)
        .collect();
    assert!(!races.is_empty(), "erc_sw must report the race");

    let sc = run_scenario(&scenario, &RunConfig::checked("li_hudak"));
    let races: Vec<_> = sc
        .race_findings()
        .into_iter()
        .filter(|f| f.kind == FindingKind::DataRace)
        .collect();
    assert!(races.is_empty(), "li_hudak serializes accesses: {races:?}");
}

#[test]
fn explorer_finds_every_schedule_of_the_locked_counter_clean() {
    let scenario = scenario::locked_counter();
    let base = RunConfig::checked("li_hudak");
    let (stats, findings) = explore(
        &scenario,
        &base,
        &ExploreConfig {
            max_schedules: 64,
            preemption_budget: 1,
        },
        &mut |_path, outcome| outcome.all_findings(&scenario),
    );
    assert!(stats.schedules_run >= 2, "{stats:?}");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn stale_done_injection_is_gated_on_head() {
    let scenario = scenario::stale_done_injection();
    let outcome = run_scenario(&scenario, &RunConfig::checked("li_hudak"));
    assert_eq!(outcome.error, None);
    let findings = outcome.all_findings(&scenario);
    assert!(findings.is_empty(), "{findings:?}");
}
