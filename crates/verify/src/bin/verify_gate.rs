//! CI gate for the verify layer.
//!
//! Modes (first CLI argument, default `all`):
//!
//! * `explorer` — exhaustively explore the smoke scenarios' schedule spaces
//!   and assert every schedule is finding-free; prints pruning statistics.
//! * `races` — run the workload sweep (shared counter, Jacobi, map
//!   colouring across the registered protocols) with the race detector and
//!   invariant oracle attached and assert it comes back clean.
//! * `mutants` — run the kill battery. With `DSM_MUTANT=<name>` set (and
//!   the binary built with `RUSTFLAGS=--cfg dsm_mutant`) the battery must
//!   catch the mutant (exit 0 on catch, 1 on escape); with no mutant
//!   selected it must come back clean.
//!
//! Exit status 0 = gate passed.

use std::process::ExitCode;

use dsmpm2_verify::scenario;
use dsmpm2_verify::{
    explore, run_scenario, with_recording, ExploreConfig, Finding, LogRecord, RunConfig, RunOutcome,
};

use dsmpm2_core::{PermutedConfig, TransportBackend, TransportTuning};
use dsmpm2_pm2::profiles;
use dsmpm2_workloads::jacobi::{run_jacobi, JacobiConfig};
use dsmpm2_workloads::map_coloring::{run_map_coloring, ColoringConfig};
use dsmpm2_workloads::micro::run_shared_counter;

/// Protocols the micro/colouring workloads can select (the builtin set).
const BUILTIN: [&str; 6] = [
    "li_hudak",
    "migrate_thread",
    "erc_sw",
    "hbrc_mw",
    "java_ic",
    "java_pf",
];

/// Protocols the Jacobi kernel can select (everything except `entry_sw`,
/// which needs explicit lock/region binding).
const JACOBI: [&str; 8] = [
    "li_hudak",
    "li_hudak_fixed",
    "migrate_thread",
    "erc_sw",
    "hbrc_mw",
    "hlrc_notices",
    "java_ic",
    "java_pf",
];

fn main() -> ExitCode {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let ok = match mode.as_str() {
        "explorer" => explorer_gate(),
        "races" => race_gate(),
        "mutants" => mutant_gate(),
        "all" => {
            // Run every stage even if an earlier one fails, so CI logs show
            // the full picture.
            let explorer = explorer_gate();
            let races = race_gate();
            let mutants = mutant_gate();
            explorer && races && mutants
        }
        other => {
            eprintln!("unknown mode {other}; expected explorer|races|mutants|all");
            false
        }
    };
    if ok {
        println!("verify_gate({mode}): PASS");
        ExitCode::SUCCESS
    } else {
        println!("verify_gate({mode}): FAIL");
        ExitCode::FAILURE
    }
}

fn permuted(options: u8) -> TransportTuning {
    TransportTuning {
        backend: TransportBackend::Permuted(PermutedConfig { options }),
    }
}

/// The schedule-exploration smoke set: every schedule of each configuration
/// must be free of findings.
fn explorer_gate() -> bool {
    let mut ok = true;
    let configs: Vec<(scenario::Scenario, &str, TransportTuning, usize)> = vec![
        (
            scenario::locked_counter(),
            "li_hudak",
            TransportTuning::ideal(),
            2,
        ),
        (scenario::locked_counter(), "erc_sw", permuted(3), 1),
        (scenario::stale_release(), "hbrc_mw", permuted(4), 1),
        (
            scenario::migratory_increment(),
            "migrate_thread",
            TransportTuning::ideal(),
            2,
        ),
        (scenario::reader_flock(), "li_hudak", permuted(3), 1),
    ];
    for (scn, protocol, transport, budget) in configs {
        let base = RunConfig {
            transport,
            ..RunConfig::checked(protocol)
        };
        let explore_cfg = ExploreConfig {
            max_schedules: 400,
            preemption_budget: budget,
        };
        let (stats, findings) = explore(&scn, &base, &explore_cfg, &mut |_path, outcome| {
            outcome.all_findings(&scn)
        });
        println!(
            "explorer {}/{protocol} ({}): {} schedules, {} choice points, \
             {} budget-pruned, {} dedup hits{}",
            scn.name,
            base.transport.backend.name(),
            stats.schedules_run,
            stats.choice_points,
            stats.pruned_by_budget,
            stats.dedup_hits,
            if stats.capped { " (CAPPED)" } else { "" },
        );
        for finding in &findings {
            println!("  FINDING {finding}");
        }
        ok &= findings.is_empty();
    }
    ok
}

/// The workload sweep: every (workload, protocol) pair must be free of
/// invariant findings and data races — they are all lock- or
/// barrier-synchronized programs.
fn race_gate() -> bool {
    let mut ok = true;
    for protocol in BUILTIN {
        let (total, log, step) = with_recording(true, || {
            run_shared_counter(2, 2, profiles::bip_myrinet(), protocol)
        });
        ok &= report_workload("shared_counter", protocol, &log, &step, total == 4);
    }
    for protocol in JACOBI {
        let (result, log, step) =
            with_recording(true, || run_jacobi(&JacobiConfig::small(2), protocol));
        ok &= report_workload("jacobi", protocol, &log, &step, result.checksum.is_finite());
    }
    // The colouring heap requires a Java-consistency protocol. Its seeding
    // phase writes the graph objects with no synchronization edge to the
    // worker threads — a genuine latent race the detector is expected to
    // flag (a true positive kept as a canary): the gate asserts the races
    // are found, are all DataRace findings, and are deterministic in count.
    for protocol in ["java_ic", "java_pf"] {
        let (result, log, step) = with_recording(true, || {
            run_map_coloring(&ColoringConfig::small(2, 6), protocol)
        });
        let races = dsmpm2_verify::hb::analyze(&log);
        let expected = step.is_empty()
            && result.best_cost > 0
            && !races.is_empty()
            && races
                .iter()
                .all(|f| f.kind == dsmpm2_verify::FindingKind::DataRace);
        println!(
            "races map_coloring/{protocol}: {} log records, {} step findings, {} race \
             findings (unsynchronized seeding phase — expected true positive)",
            log.len(),
            step.len(),
            races.len(),
        );
        if !expected {
            for finding in step.iter().chain(races.iter()) {
                println!("  FINDING {finding}");
            }
        }
        ok &= expected;
    }
    ok
}

fn report_workload(
    workload: &str,
    protocol: &str,
    log: &[LogRecord],
    step_findings: &[Finding],
    result_ok: bool,
) -> bool {
    let races = dsmpm2_verify::hb::analyze(log);
    let clean = step_findings.is_empty() && races.is_empty() && result_ok;
    println!(
        "races {workload}/{protocol}: {} log records, {} step findings, {} race findings{}",
        log.len(),
        step_findings.len(),
        races.len(),
        if result_ok { "" } else { " (WRONG RESULT)" },
    );
    for finding in step_findings.iter().chain(races.iter()) {
        println!("  FINDING {finding}");
    }
    clean
}

/// The mutant kill battery: a fixed set of checker configurations that is
/// clean on HEAD and must produce at least one finding under each of the
/// four re-introduced bugs of `dsmpm2_core::mutant`.
fn battery() -> Vec<Finding> {
    let mut findings = Vec::new();

    // copyset_wipe: readers forgotten from the copyset surface as a
    // copyset-coverage (or stale final value) violation in reader_flock.
    let scn = scenario::reader_flock();
    let outcome = run_scenario(&scn, &RunConfig::checked("li_hudak"));
    findings.extend(tag("reader_flock/li_hudak", outcome.all_findings(&scn)));

    // pre_revoke_diff_push: a release that returns before its diffs landed
    // loses an increment on some delivery schedule of stale_release.
    let scn = scenario::stale_release();
    let base = RunConfig {
        transport: permuted(4),
        ..RunConfig::checked("hbrc_mw")
    };
    let cfg = ExploreConfig {
        max_schedules: 400,
        preemption_budget: 1,
    };
    let (_, explored) = explore(&scn, &base, &cfg, &mut |_path, outcome: &RunOutcome| {
        outcome.all_findings(&scn)
    });
    findings.extend(tag("stale_release/hbrc_mw", explored));

    // hint_rewind: the forged stale AcquireDone must be ignored by the
    // version gate; without it the monotonicity oracle fires.
    let scn = scenario::stale_done_injection();
    let outcome = run_scenario(&scn, &RunConfig::checked("li_hudak"));
    findings.extend(tag(
        "stale_done_injection/li_hudak",
        outcome.all_findings(&scn),
    ));

    // doomed_frame_write: the protocol switch must consolidate remote
    // frames before evicting them.
    let scn = scenario::switch_survivor("migrate_thread");
    let outcome = run_scenario(&scn, &RunConfig::checked("li_hudak"));
    findings.extend(tag("switch_survivor/li_hudak", outcome.all_findings(&scn)));

    findings
}

fn tag(label: &str, findings: Vec<Finding>) -> Vec<Finding> {
    findings
        .into_iter()
        .map(|f| Finding {
            detail: format!("{label}: {}", f.detail),
            ..f
        })
        .collect()
}

fn mutant_gate() -> bool {
    let selected = std::env::var("DSM_MUTANT").ok();
    let findings = battery();
    match selected.as_deref() {
        None | Some("") => {
            for finding in &findings {
                println!("  FINDING {finding}");
            }
            println!(
                "mutants: HEAD battery: {} findings (expected 0)",
                findings.len()
            );
            findings.is_empty()
        }
        Some(name) => {
            if !dsmpm2_core::mutant::MUTANTS.contains(&name) {
                println!("mutants: unknown mutant {name}");
                return false;
            }
            if !dsmpm2_core::mutant::active(name) {
                println!(
                    "mutants: {name} selected but not compiled in — rebuild with \
                     RUSTFLAGS=\"--cfg dsm_mutant\""
                );
                return false;
            }
            if findings.is_empty() {
                println!("mutants: {name}: 0 findings — ESCAPED");
                false
            } else {
                println!(
                    "mutants: {name}: {} findings — CAUGHT (first: {})",
                    findings.len(),
                    findings[0]
                );
                true
            }
        }
    }
}
