//! Happens-before race detection over a recorded event log.
//!
//! The detector is log-based rather than online so its verdict is a pure
//! function of the recorded stream: the log is first canonicalized by a
//! stable sort on `(virtual time, node)` — within one `(time, node)` group
//! the append order is the engine's deterministic per-shard execution order
//! — which makes the analysis bit-identical across worker counts and
//! handoff modes even though the raw cross-node append interleaving is not.
//!
//! Ordering edges:
//!
//! * **program order** — accesses of one simulated thread are totally
//!   ordered (threads survive migration, so this holds across nodes);
//! * **lock edges** — a `LockReleasing` publishes the releaser's vector
//!   clock into the lock; a later `LockAcquired` of the same lock joins it;
//! * **barrier edges** — each barrier round joins every participant's clock
//!   at the enters and redistributes the join at the exits.
//!
//! Two accesses to the same 8-byte word, at least one a write, by different
//! threads, with neither ordered before the other, are a **data race** — and
//! a finding exactly when the page's protocol declares a relaxed consistency
//! model ([`ConsistencyModel::tolerates_unsynchronized_sharing`] is false).
//! Under a sequentially consistent protocol the same pair is benign: the
//! protocol serializes every access itself, which is the paper's motivation
//! for offering both families.

use std::collections::{BTreeSet, HashMap};

use dsmpm2_core::{ConsistencyModel, PageId, SyncEvent};

use crate::log::{Finding, FindingKind, LogRecord};

/// A vector clock: thread id -> logical time. Missing components are zero.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct VectorClock(HashMap<u64, u64>);

impl VectorClock {
    fn get(&self, thread: u64) -> u64 {
        self.0.get(&thread).copied().unwrap_or(0)
    }

    fn set(&mut self, thread: u64, value: u64) {
        self.0.insert(thread, value);
    }

    fn join(&mut self, other: &VectorClock) {
        for (&t, &v) in &other.0 {
            let slot = self.0.entry(t).or_insert(0);
            *slot = (*slot).max(v);
        }
    }
}

/// One prior access epoch of a thread on a word: the thread's own clock
/// component at the time of the access, plus provenance for the report.
#[derive(Clone, Copy, Debug)]
struct Epoch {
    clock: u64,
    node: usize,
    time_ns: u64,
}

#[derive(Default)]
struct WordState {
    /// Last write epoch per thread.
    writes: HashMap<u64, Epoch>,
    /// Last read epoch per thread.
    reads: HashMap<u64, Epoch>,
}

/// Detect data races (and owner-version rewinds) in `log`.
///
/// The result is deterministic: the log is canonicalized before analysis and
/// the findings are sorted and deduplicated (one finding per conflicting
/// `(page, thread, thread)` pair).
pub fn analyze(log: &[LogRecord]) -> Vec<Finding> {
    let mut records: Vec<&LogRecord> = log.iter().collect();
    records.sort_by_key(|r| (r.time().as_nanos(), r.node().0));

    let mut clocks: HashMap<u64, VectorClock> = HashMap::new();
    let mut lock_clocks: HashMap<u64, VectorClock> = HashMap::new();
    // Per (barrier, round): the join of every participant's clock at enter.
    let mut barrier_rounds: HashMap<(u64, u64), VectorClock> = HashMap::new();
    let mut barrier_enters: HashMap<(u64, u64), u64> = HashMap::new();
    let mut barrier_exits: HashMap<(u64, u64), u64> = HashMap::new();
    let mut words: HashMap<(PageId, u64), WordState> = HashMap::new();
    let mut race_pairs: BTreeSet<(u64, u64, u64)> = BTreeSet::new();
    let mut findings: Vec<Finding> = Vec::new();

    // A thread's clock starts with its own component at 1 so that the very
    // first epoch of a thread is never vacuously ordered before an
    // unsynchronized observer (whose view of the thread is 0).
    let thread_clock = |clocks: &mut HashMap<u64, VectorClock>, thread: u64| {
        clocks.entry(thread).or_insert_with(|| {
            let mut vc = VectorClock::default();
            vc.set(thread, 1);
            vc
        });
    };

    for record in records {
        match record {
            LogRecord::Sync(event) => {
                let thread = event.thread().as_u64();
                thread_clock(&mut clocks, thread);
                match event {
                    SyncEvent::LockAcquired { lock, .. } => {
                        if let Some(lc) = lock_clocks.get(&lock.0) {
                            clocks.get_mut(&thread).expect("thread clock").join(lc);
                        }
                    }
                    SyncEvent::LockReleasing { lock, .. } => {
                        let vc = clocks.get_mut(&thread).expect("thread clock");
                        lock_clocks.entry(lock.0).or_default().join(vc);
                        let own = vc.get(thread);
                        vc.set(thread, own + 1);
                    }
                    SyncEvent::BarrierEnter { barrier, .. } => {
                        let round = *barrier_enters.entry((barrier.0, thread)).or_insert(0);
                        barrier_enters.insert((barrier.0, thread), round + 1);
                        let vc = clocks.get_mut(&thread).expect("thread clock");
                        barrier_rounds
                            .entry((barrier.0, round))
                            .or_default()
                            .join(vc);
                        let own = vc.get(thread);
                        vc.set(thread, own + 1);
                    }
                    SyncEvent::BarrierExit { barrier, .. } => {
                        let round = *barrier_exits.entry((barrier.0, thread)).or_insert(0);
                        barrier_exits.insert((barrier.0, thread), round + 1);
                        if let Some(join) = barrier_rounds.get(&(barrier.0, round)) {
                            clocks.get_mut(&thread).expect("thread clock").join(join);
                        }
                    }
                }
            }
            LogRecord::Access { access, model } => {
                let thread = access.thread.as_u64();
                thread_clock(&mut clocks, thread);
                let vc = clocks.get(&thread).expect("thread clock").clone();
                let epoch = Epoch {
                    clock: vc.get(thread),
                    node: access.node.0,
                    time_ns: access.time.as_nanos(),
                };
                let first = access.addr.0 / 8;
                let last = (access.addr.0 + access.len.max(1) as u64 - 1) / 8;
                for word in first..=last {
                    let state = words.entry((access.page, word)).or_default();
                    // A write conflicts with prior reads and writes; a read
                    // only with prior writes.
                    let mut conflicting: Vec<(u64, Epoch)> =
                        state.writes.iter().map(|(&t, &e)| (t, e)).collect();
                    if access.is_write {
                        conflicting.extend(state.reads.iter().map(|(&t, &e)| (t, e)));
                    }
                    for (other, prior) in conflicting {
                        if other == thread || prior.clock <= vc.get(other) {
                            continue;
                        }
                        if model.tolerates_unsynchronized_sharing() {
                            continue;
                        }
                        let pair = (access.page.0, other.min(thread), other.max(thread));
                        if race_pairs.insert(pair) {
                            findings.push(race_finding(
                                access.page,
                                *model,
                                (other, prior),
                                (thread, epoch, access.is_write),
                            ));
                        }
                    }
                    if access.is_write {
                        state.writes.insert(thread, epoch);
                        // A new write supersedes this thread's read epoch for
                        // conflict purposes; keep both maps small.
                        state.reads.remove(&thread);
                    } else {
                        state.reads.insert(thread, epoch);
                    }
                }
            }
            LogRecord::OwnerVersion {
                node,
                page,
                old,
                new,
                ..
            } => {
                if new < old {
                    findings.push(Finding {
                        kind: FindingKind::OwnerVersionRewind,
                        detail: format!(
                            "home node {} rewound {}'s owner version {} -> {}",
                            node.0, page, old, new
                        ),
                    });
                }
            }
        }
    }

    findings.sort();
    findings.dedup();
    findings
}

fn race_finding(
    page: PageId,
    model: ConsistencyModel,
    (thread_a, prior): (u64, Epoch),
    (thread_b, epoch, is_write): (u64, Epoch, bool),
) -> Finding {
    Finding {
        kind: FindingKind::DataRace,
        detail: format!(
            "unordered conflicting accesses to {page} under {model:?}: thread {thread_a} \
             (node {}, t={}ns) vs thread {thread_b} {} (node {}, t={}ns)",
            prior.node,
            prior.time_ns,
            if is_write { "write" } else { "read" },
            epoch.node,
            epoch.time_ns,
        ),
    }
}
