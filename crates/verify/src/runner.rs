//! Scenario execution harness.
//!
//! [`run_scenario`] builds an engine and a DSM runtime for a [`Scenario`],
//! interprets its thread op lists, and returns a [`RunOutcome`] capturing
//! everything the checkers compare between runs: final memory, final
//! virtual time, event count, per-thread observations, the recorded
//! verification log and any per-step invariant findings.
//!
//! Global-hook installations must not overlap, and an uninstrumented
//! runtime constructed while hooks are installed would capture them; every
//! run therefore serializes on one process-wide gate.

use std::sync::Arc;

use parking_lot::Mutex;

use dsmpm2_core::{
    install_global_verify_hooks, line_of_offset, DsmAttr, DsmRuntime, DsmTuning, Engine,
    HomePolicy, NodeId, Pm2Config, TransportTuning, PAGE_SIZE,
};
use dsmpm2_protocols::register_all_protocols;
use dsmpm2_sim::{EngineConfig, HandoffMode, ScheduleController, SimTuning};

use crate::log::{Finding, FindingKind, LogRecord, RecordingHooks};
use crate::scenario::{Op, Scenario};

static RUN_GATE: Mutex<()> = Mutex::new(());

/// How much observation a run carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Instrument {
    /// No hooks installed: the baseline the conformance suite compares
    /// instrumented runs against.
    Off,
    /// Record the event log, skip per-step invariant probes.
    Record,
    /// Record the event log and probe per-step invariants.
    Check,
}

/// Configuration of one scenario run.
#[derive(Clone)]
pub struct RunConfig {
    /// Default protocol name for every page.
    pub protocol: String,
    /// Engine worker threads.
    pub workers: usize,
    /// Worker handoff mode.
    pub handoff: HandoffMode,
    /// Wire-level transport selection.
    pub transport: TransportTuning,
    /// Schedule controller (forces `workers == 1`).
    pub controller: Option<Arc<dyn ScheduleController>>,
    /// Event budget: exceeding it fails the run (livelock detector).
    pub max_events: u64,
    /// Observation level.
    pub instrument: Instrument,
}

impl RunConfig {
    /// A plain uninstrumented run of `protocol` on the default transport.
    pub fn plain(protocol: &str) -> Self {
        RunConfig {
            protocol: protocol.to_string(),
            workers: 1,
            handoff: HandoffMode::Continuation,
            transport: TransportTuning::default(),
            controller: None,
            max_events: 2_000_000,
            instrument: Instrument::Off,
        }
    }

    /// Same, with log recording and per-step invariant checking on.
    pub fn checked(protocol: &str) -> Self {
        RunConfig {
            instrument: Instrument::Check,
            ..Self::plain(protocol)
        }
    }
}

/// Everything observable about one completed scenario run.
#[derive(Clone, Debug, Default)]
pub struct RunOutcome {
    /// Final authoritative word of each page.
    pub final_words: Vec<u64>,
    /// Final authoritative words at the scenario's `expected_at` offsets
    /// (parallel to `scenario.expected_at`; empty when it is).
    pub final_words_at: Vec<u64>,
    /// Virtual time at which the run finished.
    pub final_time_ns: u64,
    /// Events the engine processed.
    pub events: u64,
    /// Engine error, if the run did not complete (e.g. the event budget).
    pub error: Option<String>,
    /// Per-thread sequence of values observed by `Read` and `Add` ops.
    pub observed: Vec<Vec<u64>>,
    /// Recorded verification log (empty when uninstrumented).
    pub log: Vec<LogRecord>,
    /// Per-step invariant findings (empty unless [`Instrument::Check`]).
    pub step_findings: Vec<Finding>,
}

impl RunOutcome {
    /// Race-detector findings over this run's log.
    pub fn race_findings(&self) -> Vec<Finding> {
        crate::hb::analyze(&self.log)
    }

    /// Findings from comparing final memory against `scenario.expected`.
    pub fn expectation_findings(&self, scenario: &Scenario) -> Vec<Finding> {
        let mut findings = Vec::new();
        if let Some(error) = &self.error {
            findings.push(Finding {
                kind: FindingKind::FinalMemory,
                detail: format!("{}: run failed: {error}", scenario.name),
            });
            return findings;
        }
        for (page, expected) in scenario.expected.iter().enumerate() {
            if let Some(expected) = expected {
                let got = self.final_words.get(page).copied().unwrap_or(0);
                if got != *expected {
                    findings.push(Finding {
                        kind: FindingKind::FinalMemory,
                        detail: format!(
                            "{}: page {page} finished at {got}, expected {expected}",
                            scenario.name
                        ),
                    });
                }
            }
        }
        for (ix, &(page, offset, expected)) in scenario.expected_at.iter().enumerate() {
            let got = self.final_words_at.get(ix).copied().unwrap_or(0);
            if got != expected {
                findings.push(Finding {
                    kind: FindingKind::FinalMemory,
                    detail: format!(
                        "{}: page {page} offset {offset} finished at {got}, expected {expected}",
                        scenario.name
                    ),
                });
            }
        }
        findings
    }

    /// Step findings plus race findings plus expectation findings, sorted.
    pub fn all_findings(&self, scenario: &Scenario) -> Vec<Finding> {
        let mut findings = self.step_findings.clone();
        findings.extend(self.race_findings());
        findings.extend(self.expectation_findings(scenario));
        findings.sort();
        findings.dedup();
        findings
    }

    /// The deterministic fingerprint compared by replay/conformance tests:
    /// final memory, final virtual time, event count and every value any
    /// thread observed.
    pub fn fingerprint(&self) -> (Vec<u64>, u64, u64, Vec<Vec<u64>>) {
        (
            [self.final_words.clone(), self.final_words_at.clone()].concat(),
            self.final_time_ns,
            self.events,
            self.observed.clone(),
        )
    }
}

/// Run `scenario` once under `cfg`.
pub fn run_scenario(scenario: &Scenario, cfg: &RunConfig) -> RunOutcome {
    let _gate = RUN_GATE.lock();
    let hooks = match cfg.instrument {
        Instrument::Off => None,
        Instrument::Record => Some(Arc::new(RecordingHooks::recorder())),
        Instrument::Check => Some(Arc::new(RecordingHooks::checker())),
    };
    let _guard = hooks
        .as_ref()
        .map(|h| install_global_verify_hooks(h.clone() as Arc<dyn dsmpm2_core::VerifyHooks>));

    let tuning = SimTuning::default()
        .with_workers(cfg.workers)
        .with_handoff(cfg.handoff);
    let mut dsm = DsmTuning::default();
    if scenario.one_sided_reads {
        dsm = dsm.with_one_sided_reads();
    }
    let config = Pm2Config::bip_myrinet(scenario.nodes)
        .with_dsm_tuning(dsm)
        .with_sim_tuning(tuning)
        .with_transport_tuning(cfg.transport);
    let engine = Engine::with_config(EngineConfig {
        max_events: cfg.max_events,
        name: scenario.name.to_string(),
        ..config.engine_config()
    });
    if let Some(controller) = &cfg.controller {
        engine.set_controller(controller.clone());
    }
    let rt = DsmRuntime::new(&engine, config);
    let (_builtins, ext) = register_all_protocols(&rt);
    let protocol = rt
        .protocol_by_name(&cfg.protocol)
        .unwrap_or_else(|| panic!("unknown protocol {}", cfg.protocol));
    rt.set_default_protocol(protocol);

    let home = NodeId(scenario.home);
    let pages: Vec<_> = (0..scenario.pages)
        .map(|_| {
            let mut attr = DsmAttr::default().home(HomePolicy::Fixed(home));
            if scenario.granularity > 0 {
                attr = attr.granularity(scenario.granularity);
            }
            rt.dsm_malloc(PAGE_SIZE as u64, attr)
        })
        .collect();
    let lock = rt.create_lock(Some(NodeId(scenario.lock_manager)));
    if cfg.protocol == "entry_sw" {
        for &addr in &pages {
            ext.entry.bind(lock, addr, PAGE_SIZE as u64);
        }
    }
    let parties = scenario.barrier_parties();
    let barrier = rt.create_barrier(parties.max(1), None);

    let observed: Arc<Mutex<Vec<Vec<u64>>>> =
        Arc::new(Mutex::new(vec![Vec::new(); scenario.threads.len()]));
    for (index, spec) in scenario.threads.iter().enumerate() {
        let ops = spec.ops.clone();
        let pages = pages.clone();
        let observed = observed.clone();
        let rt_for_thread = rt.clone();
        rt.spawn_dsm_thread(
            NodeId(spec.node),
            format!("{}-t{index}", scenario.name),
            move |ctx| {
                for op in &ops {
                    match *op {
                        Op::Read { page } => {
                            let v = ctx.read::<u64>(pages[page]);
                            observed.lock()[index].push(v);
                        }
                        Op::Write { page, value } => ctx.write::<u64>(pages[page], value),
                        Op::Add { page, delta } => {
                            let v = ctx.read::<u64>(pages[page]);
                            observed.lock()[index].push(v);
                            ctx.write::<u64>(pages[page], v + delta);
                        }
                        Op::ReadAt { page, offset } => {
                            let v = ctx.read::<u64>(pages[page].add(offset as u64));
                            observed.lock()[index].push(v);
                        }
                        Op::WriteAt {
                            page,
                            offset,
                            value,
                        } => ctx.write::<u64>(pages[page].add(offset as u64), value),
                        Op::AddAt {
                            page,
                            offset,
                            delta,
                        } => {
                            let addr = pages[page].add(offset as u64);
                            let v = ctx.read::<u64>(addr);
                            observed.lock()[index].push(v);
                            ctx.write::<u64>(addr, v + delta);
                        }
                        Op::Acquire => ctx.dsm_lock(lock),
                        Op::Release => ctx.dsm_unlock(lock),
                        Op::Barrier => ctx.dsm_barrier(barrier),
                        Op::Switch { page, protocol } => {
                            let to = rt_for_thread
                                .protocol_by_name(protocol)
                                .unwrap_or_else(|| panic!("unknown protocol {protocol}"));
                            rt_for_thread.switch_region_protocol(pages[page], PAGE_SIZE as u64, to);
                        }
                        Op::Migrate { to } => ctx.pm2.migrate_to(NodeId(to)),
                        Op::InjectStaleDone {
                            page,
                            owner,
                            version,
                        } => {
                            let node = ctx.node();
                            let page_id = pages[page].page();
                            let home = rt_for_thread.page_meta(page_id).home;
                            rt_for_thread.send_acquire_done(
                                ctx.pm2.sim,
                                node,
                                home,
                                page_id,
                                dsmpm2_core::LINE0,
                                NodeId(owner),
                                version,
                            );
                        }
                    }
                }
            },
        );
    }

    let mut engine = engine;
    let result = engine.run();
    let mut outcome = RunOutcome::default();
    match result {
        Ok(report) => {
            outcome.final_time_ns = report.final_time.as_nanos();
            outcome.events = report.events;
        }
        Err(error) => outcome.error = Some(format!("{error:?}")),
    }
    outcome.final_words = pages
        .iter()
        .map(|&addr| read_authoritative_word(&rt, addr.page(), 0))
        .collect();
    outcome.final_words_at = scenario
        .expected_at
        .iter()
        .map(|&(page, offset, _)| read_authoritative_word(&rt, pages[page].page(), offset))
        .collect();
    outcome.observed = std::mem::take(&mut observed.lock());
    if let Some(hooks) = hooks {
        outcome.log = hooks.take_log();
        outcome.step_findings = hooks.take_findings();
    }
    outcome
}

/// Install recording hooks, run `f` (which may construct any number of
/// runtimes — e.g. a workload), and return its result together with the
/// recorded log and per-step findings. Serialized on the same gate as
/// [`run_scenario`].
pub fn with_recording<R>(check: bool, f: impl FnOnce() -> R) -> (R, Vec<LogRecord>, Vec<Finding>) {
    let _gate = RUN_GATE.lock();
    let hooks = Arc::new(if check {
        RecordingHooks::checker()
    } else {
        RecordingHooks::recorder()
    });
    let guard = install_global_verify_hooks(hooks.clone() as Arc<dyn dsmpm2_core::VerifyHooks>);
    let result = f();
    drop(guard);
    (result, hooks.take_log(), hooks.take_findings())
}

/// The authoritative final value of the word at `offset` of a page: the
/// home frame for multiple-writer protocols (diffs consolidate there),
/// otherwise the frame of the node owning the coherence unit covering the
/// offset — the line at sub-page granularity, the whole page otherwise —
/// falling back to the home copy.
fn read_authoritative_word(rt: &DsmRuntime, page: dsmpm2_core::PageId, offset: usize) -> u64 {
    let meta = rt.page_meta(page);
    let multiple_writers = rt.protocol(meta.protocol).multiple_writers();
    let mut source = meta.home;
    if !multiple_writers {
        let line_size = rt.page_table(meta.home).read(page, |e| e.line_span().1);
        let line = line_of_offset(offset, line_size);
        for node in rt.cluster().topology().nodes() {
            let owned = rt.page_table(node).read_at(page, line, |e| e.owned);
            if owned && rt.frames(node).has(page) {
                source = node;
                break;
            }
        }
    }
    if !rt.frames(source).has(page) {
        return 0;
    }
    let mut buf = [0u8; 8];
    rt.frames(source).read(page, offset, &mut buf);
    u64::from_le_bytes(buf)
}
