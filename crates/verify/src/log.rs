//! Event log and per-step invariant checking.
//!
//! [`RecordingHooks`] implements the core's [`VerifyHooks`] seam: every
//! reported access, synchronization event and ownership-version update is
//! appended to an in-memory log, and — when enabled — a battery of per-step
//! protocol invariants is probed against the live page tables at the instant
//! of each application access. Violations become [`Finding`]s.
//!
//! The hooks charge no virtual time and mutate no DSM state, so an
//! instrumented run is bit-identical to an uninstrumented one.

use std::fmt;

use parking_lot::Mutex;

use dsmpm2_core::{
    line_of_offset, Access, ConsistencyModel, DsmRuntime, MemAccess, NodeId, PageId, SimTime,
    SyncEvent, VerifyHooks,
};

/// One entry of the recorded verification event stream.
#[derive(Clone, Debug)]
pub enum LogRecord {
    /// An application-level shared-memory access, together with the
    /// consistency-model declaration of the accessed page's protocol at the
    /// instant of the access.
    Access {
        /// The access itself.
        access: MemAccess,
        /// Declared model of the page's protocol when the access happened.
        model: ConsistencyModel,
    },
    /// A synchronization event.
    Sync(SyncEvent),
    /// An ownership-succession version update at a page's home manager.
    OwnerVersion {
        /// Virtual time of the update.
        time: SimTime,
        /// The home node applying the update.
        node: NodeId,
        /// The page whose succession record changed.
        page: PageId,
        /// Version before the notice was processed.
        old: u64,
        /// Version after the notice was processed.
        new: u64,
    },
}

impl LogRecord {
    /// Virtual time of the record.
    pub fn time(&self) -> SimTime {
        match self {
            LogRecord::Access { access, .. } => access.time,
            LogRecord::Sync(event) => event.time(),
            LogRecord::OwnerVersion { time, .. } => *time,
        }
    }

    /// Node the record belongs to (shard key of the event that produced it).
    pub fn node(&self) -> NodeId {
        match self {
            LogRecord::Access { access, .. } => access.node,
            LogRecord::Sync(event) => event.node(),
            LogRecord::OwnerVersion { node, .. } => *node,
        }
    }
}

/// Kinds of checker findings.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FindingKind {
    /// Two nodes held write access to one single-writer page at once.
    WriteExclusivity,
    /// A node had access to a single-writer page while absent from the
    /// writer's copyset at a write instant.
    CopysetCoverage,
    /// A page's home owner-succession version moved backwards.
    OwnerVersionRewind,
    /// An application access hit a page with no local frame installed.
    MissingFrame,
    /// Conflicting accesses unordered by happens-before on a page whose
    /// protocol promises a relaxed model.
    DataRace,
    /// A run's final memory diverged from the expected (or canonical) value.
    FinalMemory,
}

/// One checker finding.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// What went wrong.
    pub kind: FindingKind,
    /// Human-readable description, stable across reruns of the same
    /// schedule (no addresses, no wall-clock data).
    pub detail: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}: {}", self.kind, self.detail)
    }
}

/// The recording (and optionally invariant-checking) implementation of
/// [`VerifyHooks`].
pub struct RecordingHooks {
    log: Mutex<Vec<LogRecord>>,
    findings: Mutex<Vec<Finding>>,
    check_invariants: bool,
}

impl RecordingHooks {
    /// A pure recorder: log only, no per-step invariant probing.
    pub fn recorder() -> Self {
        RecordingHooks {
            log: Mutex::new(Vec::new()),
            findings: Mutex::new(Vec::new()),
            check_invariants: false,
        }
    }

    /// A recorder that also probes the per-step protocol invariants.
    pub fn checker() -> Self {
        RecordingHooks {
            check_invariants: true,
            ..Self::recorder()
        }
    }

    /// Drain the recorded log.
    pub fn take_log(&self) -> Vec<LogRecord> {
        std::mem::take(&mut self.log.lock())
    }

    /// Drain the per-step invariant findings.
    pub fn take_findings(&self) -> Vec<Finding> {
        std::mem::take(&mut self.findings.lock())
    }

    fn report(&self, kind: FindingKind, detail: String) {
        self.findings.lock().push(Finding { kind, detail });
    }

    /// Per-step invariants, probed at the instant of an application access.
    ///
    /// Anchoring at access instants matters: mid-protocol table states
    /// legitimately violate instantaneous predicates (invalidations in
    /// flight), but by the time an application access is *performed* the
    /// protocol has granted rights, so the cross-node picture must be
    /// coherent for single-writer protocols.
    fn check_access_invariants(&self, rt: &DsmRuntime, access: &MemAccess) {
        // No read (or write) of a doomed frame: the access just went through
        // the typed accessors, so the node must hold an installed frame.
        if !rt.frames(access.node).has(access.page) {
            self.report(
                FindingKind::MissingFrame,
                format!(
                    "{} accessed on node {} with no frame installed",
                    access.page, access.node.0
                ),
            );
        }
        let protocol = rt.page_table(access.node).read(access.page, |e| e.protocol);
        if rt.protocol(protocol).multiple_writers() {
            return;
        }
        // The invariants are properties of the *coherence unit* the access
        // fell into: at whole-page granularity that is the page (LINE0), at
        // sub-page granularity the line containing the accessed offset —
        // two nodes legitimately hold write access to different lines of
        // one page at once.
        let line_size = rt
            .page_table(access.node)
            .read(access.page, |e| e.line_span().1);
        let line = line_of_offset(access.addr.offset(), line_size);
        // Single-writer exclusivity: at most one node may hold write access
        // to the line.
        let mut writers: Vec<NodeId> = Vec::new();
        let mut others: Vec<NodeId> = Vec::new();
        for node in rt.cluster().topology().nodes() {
            let node_access = rt.page_table(node).read_at(access.page, line, |e| e.access);
            match node_access {
                Access::Write => writers.push(node),
                Access::Read => others.push(node),
                Access::None => {}
            }
        }
        if writers.len() > 1 {
            self.report(
                FindingKind::WriteExclusivity,
                format!(
                    "{} line {} writable on nodes {:?} simultaneously (single-writer protocol)",
                    access.page,
                    line.0,
                    writers.iter().map(|n| n.0).collect::<Vec<_>>()
                ),
            );
        }
        // Copyset coverage, checked at write instants: every other node that
        // still holds any access to the line must be visible in the writer's
        // copyset for that line, otherwise the next invalidation round will
        // miss it and it will read stale data forever.
        if access.is_write {
            let copyset = rt
                .page_table(access.node)
                .read_at(access.page, line, |e| e.copyset.clone());
            for node in others.iter().chain(writers.iter()) {
                if *node != access.node && !copyset.contains(node) {
                    self.report(
                        FindingKind::CopysetCoverage,
                        format!(
                            "node {} holds access to {} line {} but is missing from writer \
                             node {}'s copyset",
                            node.0, access.page, line.0, access.node.0
                        ),
                    );
                }
            }
        }
    }
}

impl VerifyHooks for RecordingHooks {
    fn mem_access(&self, rt: &DsmRuntime, access: MemAccess) {
        if self.check_invariants {
            self.check_access_invariants(rt, &access);
        }
        let protocol = rt.page_table(access.node).read(access.page, |e| e.protocol);
        let model = rt.protocol(protocol).consistency();
        self.log.lock().push(LogRecord::Access { access, model });
    }

    fn sync_event(&self, _rt: &DsmRuntime, event: SyncEvent) {
        self.log.lock().push(LogRecord::Sync(event));
    }

    fn owner_version_update(
        &self,
        _rt: &DsmRuntime,
        time: SimTime,
        node: NodeId,
        page: PageId,
        old: u64,
        new: u64,
    ) {
        if self.check_invariants && new < old {
            self.report(
                FindingKind::OwnerVersionRewind,
                format!(
                    "home node {} rewound {}'s owner version {} -> {}",
                    node.0, page, old, new
                ),
            );
        }
        self.log.lock().push(LogRecord::OwnerVersion {
            time,
            node,
            page,
            old,
            new,
        });
    }
}
