//! A tiny straight-line DSL for verification scenarios.
//!
//! A [`Scenario`] is a fixed small configuration — 2–3 nodes, 1–2 pages,
//! a handful of operations per thread — whose entire schedule space the
//! explorer can enumerate. Each page holds one `u64` word at offset 0
//! (sub-page scenarios address further words through the `*At` ops);
//! threads run straight-line op lists (no data-dependent branching), so a
//! scenario's behaviour is a pure function of the schedule.

/// One straight-line operation of a scenario thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Read page `page`'s word.
    Read {
        /// Page index within the scenario.
        page: usize,
    },
    /// Write `value` to page `page`'s word.
    Write {
        /// Page index within the scenario.
        page: usize,
        /// Value stored.
        value: u64,
    },
    /// Read-modify-write: add `delta` to page `page`'s word.
    Add {
        /// Page index within the scenario.
        page: usize,
        /// Increment applied.
        delta: u64,
    },
    /// Read the word at byte `offset` of page `page` (sub-page scenarios:
    /// at line granularity `g`, offset `k * g` addresses line `k`).
    ReadAt {
        /// Page index within the scenario.
        page: usize,
        /// Byte offset within the page (8-aligned).
        offset: usize,
    },
    /// Write `value` to the word at byte `offset` of page `page`.
    WriteAt {
        /// Page index within the scenario.
        page: usize,
        /// Byte offset within the page (8-aligned).
        offset: usize,
        /// Value stored.
        value: u64,
    },
    /// Read-modify-write the word at byte `offset` of page `page`.
    AddAt {
        /// Page index within the scenario.
        page: usize,
        /// Byte offset within the page (8-aligned).
        offset: usize,
        /// Increment applied.
        delta: u64,
    },
    /// Acquire the scenario's lock.
    Acquire,
    /// Release the scenario's lock.
    Release,
    /// Wait at the scenario's barrier (all threads with barriers take part).
    Barrier,
    /// Switch page `page`'s region to another registered protocol. Must be
    /// executed at a quiescent point (between barriers).
    Switch {
        /// Page index within the scenario.
        page: usize,
        /// Name of the protocol switched to.
        protocol: &'static str,
    },
    /// Migrate the executing thread to node `to`.
    Migrate {
        /// Destination node index.
        to: usize,
    },
    /// Send a forged stale `AcquireDone(page, owner, version)` control
    /// message to the page's home — fault injection modeling a duplicated
    /// coherence message that slipped past wire-level dedup. The home's
    /// version gate must ignore it.
    InjectStaleDone {
        /// Page index within the scenario.
        page: usize,
        /// Claimed (stale) owner node index.
        owner: usize,
        /// Claimed (stale) succession version.
        version: u64,
    },
}

/// One scenario thread: a home node and a straight-line op list.
#[derive(Clone, Debug)]
pub struct ThreadSpec {
    /// Node the thread starts on.
    pub node: usize,
    /// The thread's operations, executed in order.
    pub ops: Vec<Op>,
}

/// A small, fully explorable verification configuration.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Scenario name (stable; used in reports).
    pub name: &'static str,
    /// Number of cluster nodes.
    pub nodes: usize,
    /// Number of shared pages (each holding one word at offset 0).
    pub pages: usize,
    /// Node index that is the fixed home of every page.
    pub home: usize,
    /// Node index managing the scenario's lock.
    pub lock_manager: usize,
    /// Coherence granularity in bytes for every scenario page (`0` = the
    /// default whole-page unit). Protocols that do not support sub-page
    /// coherence clamp this transparently, so sub-page scenarios stay
    /// runnable — with identical expected memory — under every protocol.
    pub granularity: usize,
    /// Run with the one-sided read fast path enabled (protocols that do
    /// not declare the capability fall back to the handler path).
    pub one_sided_reads: bool,
    /// The scenario threads.
    pub threads: Vec<ThreadSpec>,
    /// Expected final word per page, when the scenario is
    /// schedule-independent (`None` entries are unchecked).
    pub expected: Vec<Option<u64>>,
    /// Expected final words at sub-page offsets: `(page, offset, value)`
    /// triples, checked against the authoritative copy of the coherence
    /// unit covering each offset. Empty for page-granularity scenarios.
    pub expected_at: Vec<(usize, usize, u64)>,
}

impl Scenario {
    /// Number of threads that execute at least one [`Op::Barrier`]; they all
    /// share one barrier, so this is the barrier's party count.
    pub fn barrier_parties(&self) -> usize {
        self.threads
            .iter()
            .filter(|t| t.ops.iter().any(|op| matches!(op, Op::Barrier)))
            .count()
    }
}

/// Lock-protected increments from two nodes: race-free under every model;
/// every schedule must end with the word at 2 and zero findings.
pub fn locked_counter() -> Scenario {
    let incr = vec![Op::Acquire, Op::Add { page: 0, delta: 1 }, Op::Release];
    Scenario {
        name: "locked_counter",
        nodes: 2,
        pages: 1,
        home: 0,
        lock_manager: 0,
        granularity: 0,
        one_sided_reads: false,
        threads: vec![
            ThreadSpec {
                node: 0,
                ops: incr.clone(),
            },
            ThreadSpec { node: 1, ops: incr },
        ],
        expected: vec![Some(2)],
        expected_at: vec![],
    }
}

/// An unsynchronized write/read pair across nodes: a data race under a
/// relaxed model, benign under sequential consistency. The final value is
/// schedule-dependent, so nothing is asserted about it.
pub fn unsynced_pair() -> Scenario {
    Scenario {
        name: "unsynced_pair",
        nodes: 2,
        pages: 1,
        home: 0,
        lock_manager: 0,
        granularity: 0,
        one_sided_reads: false,
        threads: vec![
            ThreadSpec {
                node: 0,
                ops: vec![Op::Write { page: 0, value: 7 }],
            },
            ThreadSpec {
                node: 1,
                ops: vec![Op::Read { page: 0 }],
            },
        ],
        expected: vec![None],
        expected_at: vec![],
    }
}

/// Lock-protected increments where the second incrementer runs on the home
/// node and therefore reads the home frame directly: if a release returns
/// before its diffs reached the home (the `pre_revoke_diff_push` bug), a
/// delayed diff lets the home thread read stale data and the final count
/// drops to 1.
pub fn stale_release() -> Scenario {
    let incr = vec![Op::Acquire, Op::Add { page: 0, delta: 1 }, Op::Release];
    Scenario {
        name: "stale_release",
        nodes: 3,
        pages: 1,
        home: 2,
        lock_manager: 0,
        granularity: 0,
        one_sided_reads: false,
        threads: vec![
            ThreadSpec {
                node: 1,
                ops: incr.clone(),
            },
            ThreadSpec { node: 2, ops: incr },
        ],
        expected: vec![Some(2)],
        expected_at: vec![],
    }
}

/// Three readers then an owner write: exercises copyset maintenance. With
/// `copyset_wipe` the second reader evicts the first from the copyset, the
/// write-time invalidation misses it, and the copyset-coverage invariant
/// fires at the write instant.
pub fn reader_flock() -> Scenario {
    Scenario {
        name: "reader_flock",
        nodes: 3,
        pages: 1,
        home: 0,
        lock_manager: 0,
        granularity: 0,
        one_sided_reads: false,
        threads: vec![
            ThreadSpec {
                node: 0,
                ops: vec![
                    Op::Write { page: 0, value: 7 },
                    Op::Barrier,
                    Op::Barrier,
                    Op::Write { page: 0, value: 9 },
                    Op::Barrier,
                ],
            },
            ThreadSpec {
                node: 1,
                ops: vec![Op::Barrier, Op::Read { page: 0 }, Op::Barrier, Op::Barrier],
            },
            ThreadSpec {
                node: 2,
                ops: vec![Op::Barrier, Op::Read { page: 0 }, Op::Barrier, Op::Barrier],
            },
        ],
        expected: vec![Some(9)],
        expected_at: vec![],
    }
}

/// Write, barrier, protocol switch, read: the value written before the
/// switch must survive it. With `doomed_frame_write` the remote writer's
/// frame is evicted before consolidation and the word silently resets.
pub fn switch_survivor(to_protocol: &'static str) -> Scenario {
    Scenario {
        name: "switch_survivor",
        nodes: 2,
        pages: 1,
        home: 0,
        lock_manager: 0,
        granularity: 0,
        one_sided_reads: false,
        threads: vec![
            ThreadSpec {
                node: 0,
                ops: vec![
                    Op::Barrier,
                    Op::Switch {
                        page: 0,
                        protocol: to_protocol,
                    },
                    Op::Barrier,
                    Op::Read { page: 0 },
                    Op::Barrier,
                ],
            },
            ThreadSpec {
                node: 1,
                ops: vec![
                    Op::Write { page: 0, value: 7 },
                    Op::Barrier,
                    Op::Barrier,
                    Op::Read { page: 0 },
                    Op::Barrier,
                ],
            },
        ],
        expected: vec![Some(7)],
        expected_at: vec![],
    }
}

/// Ownership succession with a forged stale `AcquireDone` injected after
/// two legitimate successions: the home's version gate must ignore the
/// stale notice (`hint_rewind` removes the gate and the owner-version
/// monotonicity oracle fires).
pub fn stale_done_injection() -> Scenario {
    Scenario {
        name: "stale_done_injection",
        nodes: 3,
        pages: 1,
        home: 0,
        lock_manager: 0,
        granularity: 0,
        one_sided_reads: false,
        threads: vec![
            ThreadSpec {
                node: 1,
                ops: vec![
                    Op::Write { page: 0, value: 1 },
                    Op::Barrier,
                    Op::Barrier,
                    Op::Barrier,
                ],
            },
            ThreadSpec {
                node: 2,
                ops: vec![
                    Op::Barrier,
                    Op::Write { page: 0, value: 2 },
                    Op::Barrier,
                    // Both successions are complete; replay node 1's old
                    // Done with its long-superseded version.
                    Op::InjectStaleDone {
                        page: 0,
                        owner: 1,
                        version: 1,
                    },
                    Op::Barrier,
                ],
            },
        ],
        expected: vec![Some(2)],
        expected_at: vec![],
    }
}

/// Thread migration chasing the data: exercises `migrate_thread`-style
/// protocols under exploration (the thread hops to the home, increments
/// in place, and hops back).
pub fn migratory_increment() -> Scenario {
    Scenario {
        name: "migratory_increment",
        nodes: 2,
        pages: 1,
        home: 0,
        lock_manager: 0,
        granularity: 0,
        one_sided_reads: false,
        threads: vec![
            ThreadSpec {
                node: 0,
                ops: vec![Op::Acquire, Op::Add { page: 0, delta: 1 }, Op::Release],
            },
            ThreadSpec {
                node: 1,
                ops: vec![
                    Op::Migrate { to: 0 },
                    Op::Acquire,
                    Op::Add { page: 0, delta: 1 },
                    Op::Release,
                    Op::Migrate { to: 1 },
                ],
            },
        ],
        expected: vec![Some(2)],
        expected_at: vec![],
    }
}

/// Two nodes hammer disjoint 1 KiB lines of one page with unsynchronized
/// read-modify-writes. At sub-page granularity each line has exactly one
/// writer, so per-line single-writer exclusivity must hold on every step
/// and both final line words are schedule-independent; under a protocol
/// that clamps to whole pages the page ping-pongs instead, but each word
/// still has a single writer and the final memory is identical.
pub fn line_exclusive_writers() -> Scenario {
    Scenario {
        name: "line_exclusive_writers",
        nodes: 2,
        pages: 1,
        home: 0,
        lock_manager: 0,
        granularity: 1024,
        one_sided_reads: false,
        threads: vec![
            ThreadSpec {
                node: 0,
                ops: vec![
                    Op::AddAt {
                        page: 0,
                        offset: 0,
                        delta: 1,
                    },
                    Op::AddAt {
                        page: 0,
                        offset: 0,
                        delta: 1,
                    },
                    Op::Barrier,
                ],
            },
            ThreadSpec {
                node: 1,
                ops: vec![
                    Op::AddAt {
                        page: 0,
                        offset: 1024,
                        delta: 1,
                    },
                    Op::AddAt {
                        page: 0,
                        offset: 1024,
                        delta: 1,
                    },
                    Op::Barrier,
                ],
            },
        ],
        expected: vec![None],
        expected_at: vec![(0, 0, 2), (0, 1024, 2)],
    }
}

/// Copyset coverage at line resolution: two remote readers cache line 0,
/// then its home writer updates it — at the write instant both readers
/// must be visible in that line's copyset or the invalidation round
/// misses one and it reads stale data forever. Line 1 is written once
/// before the readers arrive and read again at the end: at sub-page
/// granularity its copy is never invalidated by line 0's traffic.
pub fn line_copyset_coverage() -> Scenario {
    Scenario {
        name: "line_copyset_coverage",
        nodes: 3,
        pages: 1,
        home: 0,
        lock_manager: 0,
        granularity: 1024,
        one_sided_reads: false,
        threads: vec![
            ThreadSpec {
                node: 0,
                ops: vec![
                    Op::WriteAt {
                        page: 0,
                        offset: 0,
                        value: 7,
                    },
                    Op::WriteAt {
                        page: 0,
                        offset: 1024,
                        value: 40,
                    },
                    Op::Barrier,
                    Op::Barrier,
                    Op::WriteAt {
                        page: 0,
                        offset: 0,
                        value: 9,
                    },
                    Op::Barrier,
                ],
            },
            ThreadSpec {
                node: 1,
                ops: vec![
                    Op::Barrier,
                    Op::ReadAt { page: 0, offset: 0 },
                    Op::Barrier,
                    Op::Barrier,
                    Op::ReadAt { page: 0, offset: 0 },
                ],
            },
            ThreadSpec {
                node: 2,
                ops: vec![
                    Op::Barrier,
                    Op::ReadAt { page: 0, offset: 0 },
                    Op::ReadAt {
                        page: 0,
                        offset: 1024,
                    },
                    Op::Barrier,
                    Op::Barrier,
                    Op::ReadAt {
                        page: 0,
                        offset: 1024,
                    },
                ],
            },
        ],
        expected: vec![None],
        expected_at: vec![(0, 0, 9), (0, 1024, 40)],
    }
}

/// A one-sided read fault racing a write-ownership acquisition on the
/// same page: every interleaving must either serve the fetch from a
/// still-valid home frame (registering the reader in the copyset so the
/// writer's invalidation reaches it) or refuse and fall back to the
/// handler path — never hand out a copy that escapes coherence. Node 2
/// is the only post-barrier writer, so the final word is
/// schedule-independent even though the reader's observations race.
pub fn one_sided_read_race() -> Scenario {
    Scenario {
        name: "one_sided_read_race",
        nodes: 3,
        pages: 1,
        home: 0,
        lock_manager: 0,
        granularity: 0,
        one_sided_reads: true,
        threads: vec![
            ThreadSpec {
                node: 0,
                ops: vec![Op::Write { page: 0, value: 3 }, Op::Barrier, Op::Barrier],
            },
            ThreadSpec {
                node: 1,
                ops: vec![
                    Op::Barrier,
                    Op::Read { page: 0 },
                    Op::Read { page: 0 },
                    Op::Barrier,
                    Op::Read { page: 0 },
                ],
            },
            ThreadSpec {
                node: 2,
                ops: vec![Op::Barrier, Op::Write { page: 0, value: 5 }, Op::Barrier],
            },
        ],
        expected: vec![Some(5)],
        expected_at: vec![],
    }
}
