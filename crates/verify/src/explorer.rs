//! Bounded schedule-space exploration.
//!
//! The explorer drives the engine's [`ScheduleController`] seam with a
//! [`ReplayController`]: a run is identified by its *decision path* — the
//! choice taken at every choice point, in encounter order, with 0 the
//! canonical choice — and replaying a path reproduces the run bit for bit.
//! A DFS over paths enumerates the schedule space:
//!
//! * the canonical path (all zeros) runs first;
//! * every completed run contributes candidate deviations: flip one
//!   recorded decision, keep the prefix, let everything after fall back to
//!   canonical;
//! * candidates are normalized (trailing canonical choices trimmed) and
//!   deduplicated, so equivalent paths run once — the sleep-set-lite half
//!   of the pruning;
//! * a **preemption budget** bounds the number of non-canonical decisions
//!   per path (bounded-preemption search: most protocol bugs need only one
//!   or two adversarial deviations, and the budget turns an exponential
//!   space into a small polynomial one).

use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use dsmpm2_sim::{EventChoice, ScheduleController, SimTime};

use crate::log::Finding;
use crate::runner::{run_scenario, RunConfig, RunOutcome};
use crate::scenario::Scenario;

/// One recorded decision of a controlled run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Choice {
    /// Number of alternatives that were available.
    pub arity: u32,
    /// The alternative taken (after clamping).
    pub picked: u32,
    /// True for a transport delivery-slot choice, false for an event-order
    /// choice.
    pub is_delivery: bool,
}

/// A [`ScheduleController`] that replays a decision path and records every
/// choice point it encounters. Positions beyond the path fall back to the
/// canonical choice 0; requested picks are clamped into range.
pub struct ReplayController {
    path: Vec<u8>,
    cursor: AtomicUsize,
    recorded: Mutex<Vec<Choice>>,
}

impl ReplayController {
    /// A controller replaying `path`.
    pub fn new(path: Vec<u8>) -> Self {
        ReplayController {
            path,
            cursor: AtomicUsize::new(0),
            recorded: Mutex::new(Vec::new()),
        }
    }

    /// The canonical controller (replays the all-zeros path).
    pub fn canonical() -> Self {
        Self::new(Vec::new())
    }

    /// The decisions the controlled run actually took, in encounter order.
    pub fn recorded(&self) -> Vec<Choice> {
        self.recorded.lock().clone()
    }

    fn next_pick(&self, arity: u32, is_delivery: bool) -> u32 {
        let position = self.cursor.fetch_add(1, Ordering::SeqCst);
        let requested = self.path.get(position).copied().unwrap_or(0) as u32;
        let picked = requested.min(arity.saturating_sub(1));
        self.recorded.lock().push(Choice {
            arity,
            picked,
            is_delivery,
        });
        picked
    }
}

impl ScheduleController for ReplayController {
    fn choose_event(&self, _now: SimTime, choices: &[EventChoice]) -> usize {
        self.next_pick(choices.len() as u32, false) as usize
    }

    fn choose_delivery(&self, _now: SimTime, _from: u64, _to: u64, options: u32) -> u32 {
        self.next_pick(options, true)
    }
}

/// Exploration bounds.
#[derive(Clone, Copy, Debug)]
pub struct ExploreConfig {
    /// Hard cap on schedules run (the explorer reports if it was hit).
    pub max_schedules: usize,
    /// Maximum non-canonical decisions per path.
    pub preemption_budget: usize,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_schedules: 512,
            preemption_budget: 1,
        }
    }
}

/// Exploration statistics (printed by the CI gate).
#[derive(Clone, Copy, Debug, Default)]
pub struct ExploreStats {
    /// Schedules actually executed.
    pub schedules_run: usize,
    /// Total choice points encountered across all runs.
    pub choice_points: u64,
    /// Candidate paths pruned by the preemption budget.
    pub pruned_by_budget: u64,
    /// Candidate paths skipped because an equivalent path already ran.
    pub dedup_hits: u64,
    /// True if `max_schedules` cut the search short.
    pub capped: bool,
}

/// Explore `scenario`'s schedule space under `base` (whose `controller` and
/// `workers` fields are overridden per run). `on_run` judges each completed
/// schedule and returns its findings; the explorer tags them with the
/// decision path that produced them.
pub fn explore(
    scenario: &Scenario,
    base: &RunConfig,
    cfg: &ExploreConfig,
    on_run: &mut dyn FnMut(&[u8], &RunOutcome) -> Vec<Finding>,
) -> (ExploreStats, Vec<Finding>) {
    let mut stats = ExploreStats::default();
    let mut findings = Vec::new();
    let mut seen: HashSet<Vec<u8>> = HashSet::new();
    let mut stack: Vec<Vec<u8>> = vec![Vec::new()];
    seen.insert(Vec::new());

    while let Some(path) = stack.pop() {
        if stats.schedules_run >= cfg.max_schedules {
            stats.capped = true;
            break;
        }
        let controller = Arc::new(ReplayController::new(path.clone()));
        let mut run_cfg = base.clone();
        run_cfg.workers = 1;
        run_cfg.controller = Some(controller.clone());
        let outcome = run_scenario(scenario, &run_cfg);
        stats.schedules_run += 1;
        let recorded = controller.recorded();
        stats.choice_points += recorded.len() as u64;
        for finding in on_run(&path, &outcome) {
            findings.push(Finding {
                detail: format!("[path {path:?}] {}", finding.detail),
                ..finding
            });
        }
        // Deviate only at positions at or beyond this path's frontier:
        // alternatives at earlier positions were enqueued when the prefix
        // itself was explored.
        for position in path.len()..recorded.len() {
            let choice = recorded[position];
            for alt in 0..choice.arity {
                if alt == choice.picked {
                    continue;
                }
                let mut candidate: Vec<u8> = recorded[..position]
                    .iter()
                    .map(|c| c.picked.min(255) as u8)
                    .collect();
                candidate.push(alt.min(255) as u8);
                while candidate.last() == Some(&0) {
                    candidate.pop();
                }
                let preemptions = candidate.iter().filter(|&&pick| pick != 0).count();
                if preemptions > cfg.preemption_budget {
                    stats.pruned_by_budget += 1;
                    continue;
                }
                if !seen.insert(candidate.clone()) {
                    stats.dedup_hits += 1;
                    continue;
                }
                stack.push(candidate);
            }
        }
    }
    (stats, findings)
}
