//! # dsmpm2-verify — schedule exploration, race detection, invariant checking
//!
//! This crate turns the deterministic simulation engine into a *verification
//! harness* for the DSM protocol stack, in three layers:
//!
//! * [`explorer`] — bounded schedule-space exploration. The engine's
//!   [`dsmpm2_sim::ScheduleController`] seam exposes every same-instant
//!   cross-shard event-order tie and (on a `Permuted` transport) every
//!   message-delivery slot as an explicit choice point; a DFS with
//!   trailing-canonical normalization, deduplication and a
//!   bounded-preemption budget enumerates the schedules of small
//!   [`scenario`] configurations exhaustively.
//! * [`hb`] — a happens-before race detector: vector clocks threaded
//!   through lock acquire/release and barrier rounds over the event log
//!   recorded by the core's [`dsmpm2_core::VerifyHooks`] seam. Conflicting
//!   unordered accesses are findings exactly on pages whose protocol
//!   declares a relaxed consistency model — a race on `erc_sw` is a bug in
//!   the application-protocol contract, the same pair under `li_hudak`'s
//!   sequential consistency is benign.
//! * per-step **invariant oracles** ([`log::RecordingHooks`]) — probed at
//!   every application access: single-writer exclusivity, copyset ⊇
//!   readers, owner-version monotonicity, no access to a missing frame.
//!
//! The `verify_gate` binary wires all three into the CI mutation gate: four
//! historical protocol bugs are compiled back in behind `--cfg dsm_mutant`
//! ([`dsmpm2_core::mutant`]) and every one must be caught while an
//! unmutated build passes clean.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod explorer;
pub mod hb;
pub mod log;
pub mod runner;
pub mod scenario;

pub use explorer::{explore, Choice, ExploreConfig, ExploreStats, ReplayController};
pub use log::{Finding, FindingKind, LogRecord, RecordingHooks};
pub use runner::{run_scenario, with_recording, Instrument, RunConfig, RunOutcome};
pub use scenario::{Op, Scenario, ThreadSpec};
