//! Wall-clock measurement of the multi-worker engine on the 4-node
//! conformance workloads.
//!
//! For each workload the same program runs on the 1-, 2- and 4-worker
//! engine. Two things are recorded:
//!
//! * the **ablation**: final shared memory and virtual completion time must
//!   be bit-identical across worker counts (asserted — this is the PR 5
//!   determinism guarantee), while the wall-clock times are free to differ;
//! * the **scaling numbers**: wall-clock milliseconds and processed events
//!   per second at each worker count, plus how many virtual instants were
//!   actually dispatched to more than one worker (`parallel_rounds`) —
//!   the measure of how much same-instant cross-node parallelism the
//!   workload exposes.
//!
//! On a single-CPU host the parallel rounds cannot speed anything up (the
//! workers time-slice one core and pay the coordination switches), so the
//! interesting speed-up column needs a multi-core machine; the ablation and
//! the parallel-rounds counts are meaningful everywhere.

use std::time::Instant;

use dsmpm2_pm2::DsmTuning;
use dsmpm2_sim::{RunReport, SimTuning};
use dsmpm2_workloads::{
    jacobi::{run_jacobi, JacobiConfig},
    matmul::{run_matmul, MatmulConfig},
    sor::{run_sor, SorConfig},
};
use serde::Serialize;

/// Worker counts the scaling bench sweeps.
pub const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

/// One (workload, workers) measurement.
#[derive(Clone, Debug, Serialize)]
pub struct ScalingRow {
    /// Workload name (`jacobi`, `sor`, `matmul`).
    pub workload: String,
    /// Protocol the workload ran under.
    pub protocol: String,
    /// Scheduler worker count.
    pub workers: usize,
    /// Best-of-trials wall-clock milliseconds for the whole run.
    pub wall_ms: f64,
    /// Events processed by the run.
    pub events: u64,
    /// Events per wall-clock second (the scaling metric).
    pub events_per_sec: f64,
    /// Virtual instants dispatched to more than one worker.
    pub parallel_rounds: u64,
    /// Virtual completion time in µs (identical across worker counts).
    pub virtual_us: f64,
}

/// The full scaling measurement.
#[derive(Clone, Debug, Serialize)]
pub struct ScalingMeasurement {
    /// `std::thread::available_parallelism()` of the measuring host —
    /// parallel speed-ups require this to exceed 1.
    pub host_cpus: usize,
    /// True when every workload produced bit-identical memory and virtual
    /// time across all worker counts (asserted before this is returned).
    pub identical_across_workers: bool,
    /// `events_per_sec(workers = 4) / events_per_sec(workers = 1)`, worst
    /// workload.
    pub min_speedup_4w: f64,
    /// Per-(workload, workers) rows.
    pub rows: Vec<ScalingRow>,
}

fn tuning(workers: usize) -> SimTuning {
    SimTuning::default().with_workers(workers)
}

/// Run one workload at `workers` and return (wall ms best-of-`trials`,
/// engine report, final cells, virtual time µs).
fn measure<F>(trials: u32, run: F) -> (f64, RunReport, Vec<u64>, f64)
where
    F: Fn() -> (RunReport, Vec<u64>, f64),
{
    let mut best_ms = f64::INFINITY;
    let mut out = None;
    for _ in 0..trials {
        let start = Instant::now();
        let (report, cells, virtual_us) = run();
        let ms = start.elapsed().as_secs_f64() * 1e3;
        if ms < best_ms {
            best_ms = ms;
        }
        out = Some((report, cells, virtual_us));
    }
    let (report, cells, virtual_us) = out.expect("at least one trial");
    (best_ms, report, cells, virtual_us)
}

/// Measure events/sec on the three 4-node conformance workloads at 1, 2 and
/// 4 workers, asserting bit-identical memory and virtual time throughout.
pub fn measure_engine_scaling(quick: bool) -> ScalingMeasurement {
    let trials = if quick { 1 } else { 3 };
    let (size, iters, n) = if quick { (16, 2, 8) } else { (32, 4, 12) };
    let nodes = 4;
    let net = dsmpm2_madeleine::profiles::bip_myrinet();

    let mut rows: Vec<ScalingRow> = Vec::new();
    let mut min_speedup = f64::INFINITY;

    type Runner = Box<dyn Fn(usize) -> (RunReport, Vec<u64>, f64)>;
    let workloads: Vec<(&str, &str, Runner)> = vec![
        ("jacobi", "hbrc_mw", {
            let net = net.clone();
            Box::new(move |workers| {
                let r = run_jacobi(
                    &JacobiConfig {
                        size,
                        iterations: iters,
                        nodes,
                        network: net.clone(),
                        compute_per_cell_us: 0.02,
                        tuning: DsmTuning::default(),
                        sim: tuning(workers),
                        transport: Default::default(),
                    },
                    "hbrc_mw",
                );
                (r.engine, r.final_cells, r.elapsed.as_micros_f64())
            })
        }),
        ("sor", "erc_sw", {
            let net = net.clone();
            Box::new(move |workers| {
                let r = run_sor(
                    &SorConfig {
                        size,
                        iterations: iters,
                        omega: 1.25,
                        nodes,
                        network: net.clone(),
                        compute_per_cell_us: 0.02,
                        tuning: DsmTuning::default(),
                        sim: tuning(workers),
                        transport: Default::default(),
                    },
                    "erc_sw",
                );
                (r.engine, r.final_cells, r.elapsed.as_micros_f64())
            })
        }),
        ("matmul", "li_hudak", {
            let net = net.clone();
            Box::new(move |workers| {
                let r = run_matmul(
                    &MatmulConfig {
                        n,
                        nodes,
                        network: net.clone(),
                        compute_per_madd_us: 0.01,
                        tuning: DsmTuning::default(),
                        sim: tuning(workers),
                        transport: Default::default(),
                    },
                    "li_hudak",
                );
                (r.engine, r.final_cells, r.elapsed.as_micros_f64())
            })
        }),
    ];

    for (workload, protocol, runner) in &workloads {
        let mut baseline: Option<(Vec<u64>, f64, f64)> = None;
        for &workers in &WORKER_COUNTS {
            let (wall_ms, report, cells, virtual_us) = measure(trials, || runner(workers));
            let events_per_sec = report.events as f64 / (wall_ms / 1e3);
            match &baseline {
                None => baseline = Some((cells, virtual_us, events_per_sec)),
                Some((base_cells, base_virtual, base_eps)) => {
                    assert_eq!(
                        &cells, base_cells,
                        "{workload}: final memory diverged at {workers} workers"
                    );
                    assert!(
                        (virtual_us - base_virtual).abs() < f64::EPSILON,
                        "{workload}: virtual time diverged at {workers} workers \
                         ({virtual_us} vs {base_virtual})"
                    );
                    if workers == 4 {
                        min_speedup = min_speedup.min(events_per_sec / base_eps);
                    }
                }
            }
            rows.push(ScalingRow {
                workload: (*workload).to_string(),
                protocol: (*protocol).to_string(),
                workers,
                wall_ms,
                events: report.events,
                events_per_sec,
                parallel_rounds: report.parallel_rounds,
                virtual_us,
            });
        }
    }

    ScalingMeasurement {
        host_cpus: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        identical_across_workers: true,
        min_speedup_4w: min_speedup,
        rows,
    }
}
