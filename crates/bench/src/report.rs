//! Small reporting helpers shared by the table/figure harness binaries.

use std::fs;
use std::path::Path;

use serde::Serialize;

/// Render a Markdown table from a header row and data rows.
pub fn markdown_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&format!("| {} |\n", header.join(" | ")));
    out.push_str(&format!(
        "|{}\n",
        header.iter().map(|_| "---|").collect::<String>()
    ));
    for row in rows {
        out.push_str(&format!("| {} |\n", row.join(" | ")));
    }
    out
}

/// Serialize `value` as pretty JSON into `results/<name>.json` (creating the
/// directory if needed), so EXPERIMENTS.md can reference machine-readable
/// outputs. Errors are reported but not fatal: the printed table is the
/// primary artefact.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = Path::new("results");
    if let Err(e) = fs::create_dir_all(dir) {
        eprintln!("warning: could not create results/: {e}");
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = fs::write(&path, json) {
                eprintln!("warning: could not write {}: {e}", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize {name}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_table_renders_header_and_rows() {
        let t = markdown_table(
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        );
        assert!(t.contains("| a | b |"));
        assert!(t.contains("| 3 | 4 |"));
        assert_eq!(t.lines().count(), 4);
    }
}
