//! `engine_scaling` — wall-clock scaling of the multi-worker engine.
//!
//! Runs the three 4-node conformance workloads (jacobi/hbrc_mw, sor/erc_sw,
//! matmul/li_hudak) on the 1-, 2- and 4-worker engine, printing events/sec,
//! the number of parallel scheduler rounds, and the speed-up over the
//! single-worker baseline. Asserts the PR 5 ablation along the way: the
//! final shared memory and the virtual completion time must be bit-identical
//! across worker counts — only wall-clock is allowed to move.
//!
//! Records machine-readably:
//!
//! * `results/engine_scaling.json` — like every other harness binary;
//! * `BENCH_pr5.json` (working directory, next to `BENCH_seed.json`) — the
//!   PR 5 trajectory record referenced by EXPERIMENTS.md.
//!
//! Usage: `engine_scaling [--quick]`.

use dsmpm2_bench::{markdown_table, measure_engine_scaling, write_json, ScalingMeasurement};
use serde::Serialize;

#[derive(Serialize)]
struct Pr5Baseline {
    engine_scaling: ScalingMeasurement,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!(
        "engine_scaling: 4-node conformance workloads at 1/2/4 scheduler workers \
         ({} host CPUs)\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );

    let m = measure_engine_scaling(quick);

    let mut rows = Vec::new();
    let mut base_eps = 0.0f64;
    for row in &m.rows {
        if row.workers == 1 {
            base_eps = row.events_per_sec;
        }
        rows.push(vec![
            format!("{}/{}", row.workload, row.protocol),
            row.workers.to_string(),
            format!("{:.1}", row.wall_ms),
            row.events.to_string(),
            format!("{:.0}", row.events_per_sec),
            row.parallel_rounds.to_string(),
            format!("{:.2}x", row.events_per_sec / base_eps),
            format!("{:.1}", row.virtual_us),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "Workload",
                "Workers",
                "Wall (ms)",
                "Events",
                "Events/s",
                "Parallel rounds",
                "Speed-up",
                "Virtual (us)"
            ],
            &rows
        )
    );
    println!("Ablation: memory and virtual time bit-identical across 1/2/4 workers (asserted).");
    println!(
        "Worst 4-worker speed-up: {:.2}x on {} host CPU(s).",
        m.min_speedup_4w, m.host_cpus
    );
    if m.host_cpus == 1 {
        println!(
            "note: a single-CPU host cannot show parallel speed-up — the workers \
             time-slice one core; see EXPERIMENTS.md for the analysis."
        );
    }

    write_json("engine_scaling", &m);
    let baseline = Pr5Baseline { engine_scaling: m };
    match serde_json::to_string_pretty(&baseline) {
        Ok(json) => {
            if let Err(e) = std::fs::write("BENCH_pr5.json", json + "\n") {
                eprintln!("warning: could not write BENCH_pr5.json: {e}");
            } else {
                println!("\nRecorded baseline in BENCH_pr5.json.");
            }
        }
        Err(e) => eprintln!("warning: could not serialize baseline: {e}"),
    }
}
