//! Regenerates **Figure 4** of the paper: solving TSP for 14 cities with
//! random inter-city distances, one application thread per node, on the
//! BIP/Myrinet profile, comparing the four DSM protocols `li_hudak`,
//! `migrate_thread`, `erc_sw` and `hbrc_mw`.
//!
//! Usage: `fig4_tsp [cities] [max_nodes]` — defaults to 14 cities and node
//! counts {1, 2, 4}. Use fewer cities for a quick run.

use dsmpm2_bench::{markdown_table, write_json};
use dsmpm2_workloads::tsp::{run_tsp, TspConfig, TspInstance};
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    protocol: String,
    nodes: usize,
    cities: usize,
    elapsed_ms: f64,
    best_tour: u32,
    page_transfers: u64,
    thread_migrations: u64,
    expanded_nodes: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let cities: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(14);
    let max_nodes: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
    let node_counts: Vec<usize> = [1usize, 2, 4, 8]
        .into_iter()
        .filter(|&n| n <= max_nodes)
        .collect();
    let protocols = ["li_hudak", "migrate_thread", "erc_sw", "hbrc_mw"];

    println!("Figure 4: TSP, {cities} cities, one thread per node, BIP/Myrinet\n");
    let oracle = TspInstance::random(cities, 42).solve_sequential();
    println!("sequential optimum (oracle): {oracle}\n");

    let mut rows = Vec::new();
    let mut points = Vec::new();
    for &nodes in &node_counts {
        for proto in protocols {
            let mut config = TspConfig::paper(nodes);
            config.cities = cities;
            let result = run_tsp(&config, proto);
            assert_eq!(
                result.best, oracle,
                "distributed result must match the oracle"
            );
            rows.push(vec![
                proto.to_string(),
                nodes.to_string(),
                format!("{:.1}", result.elapsed.as_millis_f64()),
                result.stats.page_transfers.to_string(),
                result.migrations.to_string(),
                result.expanded.to_string(),
            ]);
            points.push(Point {
                protocol: proto.to_string(),
                nodes,
                cities,
                elapsed_ms: result.elapsed.as_millis_f64(),
                best_tour: result.best,
                page_transfers: result.stats.page_transfers,
                thread_migrations: result.migrations,
                expanded_nodes: result.expanded,
            });
        }
    }
    println!(
        "{}",
        markdown_table(
            &[
                "Protocol",
                "Nodes",
                "Run time (ms, virtual)",
                "Page transfers",
                "Thread migrations",
                "Expanded nodes"
            ],
            &rows
        )
    );
    println!(
        "Expected shape (paper): every page-based protocol outperforms migrate_thread,\n\
         because all computing threads migrate to the node holding the shared bound."
    );
    write_json("fig4_tsp", &points);
}
