//! Regenerates **Table 4** of the paper: processing a read fault under the
//! thread-migration policy (page fault, thread migration, protocol overhead)
//! on the four network profiles.

use dsmpm2_bench::{markdown_table, write_json};
use dsmpm2_madeleine::profiles;
use dsmpm2_workloads::{measure_read_fault, FaultPolicy};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    network: String,
    page_fault_us: f64,
    thread_migration_us: f64,
    protocol_overhead_us: f64,
    total_us: f64,
}

fn main() {
    println!("Table 4: Processing a read fault under thread-migration policy (us)\n");
    let paper = [
        ("BIP/Myrinet", 87.0),
        ("TCP/Myrinet", 292.0),
        ("TCP/FastEthernet", 385.0),
        ("SISCI/SCI", 74.0),
    ];
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for net in profiles::all() {
        let b = measure_read_fault(net.clone(), FaultPolicy::ThreadMigration);
        let paper_total = paper
            .iter()
            .find(|(n, _)| *n == net.name)
            .map(|(_, t)| *t)
            .unwrap_or(f64::NAN);
        rows.push(vec![
            net.name.clone(),
            format!("{:.0}", b.page_fault_us),
            format!("{:.0}", b.migration_us),
            format!("{:.0}", b.overhead_us),
            format!("{:.0}", b.total_us),
            format!("{paper_total:.0}"),
        ]);
        json_rows.push(Row {
            network: net.name.clone(),
            page_fault_us: b.page_fault_us,
            thread_migration_us: b.migration_us,
            protocol_overhead_us: b.overhead_us,
            total_us: b.total_us,
        });
    }
    println!(
        "{}",
        markdown_table(
            &[
                "Network",
                "Page fault",
                "Thread migration",
                "Protocol overhead",
                "Total (measured)",
                "Total (paper)"
            ],
            &rows
        )
    );
    write_json("table4", &json_rows);
}
