//! Regenerates the §2.1 micro-measurements of the paper: minimal RPC latency
//! and minimal-stack thread-migration latency on the four network profiles
//! (the paper reports 6 µs / 8 µs RPC and 62 µs / 75 µs migration for
//! SISCI/SCI and BIP/Myrinet respectively).

use std::sync::Arc;

use dsmpm2_bench::{markdown_table, write_json};
use dsmpm2_madeleine::profiles;
use dsmpm2_pm2::{service_fn, Engine, NodeId, Pm2Cluster, Pm2Config, RpcClass, RpcReply};
use dsmpm2_sim::SimDuration;
use parking_lot::Mutex;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    network: String,
    rpc_latency_us: f64,
    thread_migration_us: f64,
}

fn measure_rpc(network: dsmpm2_madeleine::NetworkModel) -> f64 {
    let engine = Engine::new();
    let cluster = Pm2Cluster::new(&engine, Pm2Config::new(2, network));
    cluster.register_service(service_fn("null", false, |_ctx, _payload| {
        Some(RpcReply::minimal(()))
    }));
    let elapsed = Arc::new(Mutex::new(SimDuration::ZERO));
    let e = elapsed.clone();
    let c = cluster.clone();
    engine.spawn("rpc-caller", move |h| {
        let start = h.now();
        let _ = c.rpc_call(
            h,
            NodeId(0),
            NodeId(1),
            "null",
            Box::new(()),
            RpcClass::Minimal,
        );
        *e.lock() = h.now().since(start);
    });
    let mut engine = engine;
    engine.run().unwrap();
    let v = elapsed.lock().as_micros_f64();
    v
}

fn measure_migration(network: dsmpm2_madeleine::NetworkModel) -> f64 {
    let engine = Engine::new();
    let cluster = Pm2Cluster::new(&engine, Pm2Config::new(2, network));
    let elapsed = Arc::new(Mutex::new(SimDuration::ZERO));
    let e = elapsed.clone();
    cluster.spawn_thread_on(NodeId(0), "migrator", move |ctx| {
        let start = ctx.now();
        ctx.migrate_to(NodeId(1));
        *e.lock() = ctx.now().since(start);
    });
    let mut engine = engine;
    engine.run().unwrap();
    let v = elapsed.lock().as_micros_f64();
    v
}

fn main() {
    println!("PM2 micro-measurements (paper section 2.1)\n");
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for net in profiles::all() {
        let rpc = measure_rpc(net.clone());
        let mig = measure_migration(net.clone());
        rows.push(vec![
            net.name.clone(),
            format!("{rpc:.1}"),
            format!("{mig:.1}"),
        ]);
        json_rows.push(Row {
            network: net.name.clone(),
            rpc_latency_us: rpc,
            thread_migration_us: mig,
        });
    }
    println!(
        "{}",
        markdown_table(
            &[
                "Network",
                "Minimal RPC (us)",
                "Thread migration, ~1kB stack (us)"
            ],
            &rows
        )
    );
    println!("Paper: RPC 8us on BIP/Myrinet, 6us on SISCI/SCI; migration 75us / 62us.");
    write_json("micro_pm2", &json_rows);
}
