//! Perf-regression gate: re-measures the Table 3 / Table 4 read-fault
//! totals on every network profile and compares them against the recorded
//! seed baseline (`BENCH_seed.json`). Exits non-zero when any total deviates
//! from the baseline by more than 10% — in *either* direction: the numbers
//! are calibrated against the paper, so an unexplained speed-up is as
//! suspicious as a slow-down in a virtual-time simulation.
//!
//! Usage: `compare [path/to/BENCH_seed.json]` (default: `BENCH_seed.json`
//! in the working directory — the repository root under `cargo run`).
//!
//! Run in CI on every PR so perf-affecting changes must either stay inside
//! the envelope or consciously regenerate the baseline.

use dsmpm2_bench::markdown_table;
use dsmpm2_madeleine::profiles;
use dsmpm2_workloads::{measure_read_fault, FaultPolicy};
use serde::Value;

const THRESHOLD: f64 = 0.10;

fn number(value: &Value) -> Option<f64> {
    match value {
        Value::Float(x) => Some(*x),
        Value::UInt(n) => Some(*n as f64),
        Value::Int(n) => Some(*n as f64),
        _ => None,
    }
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_seed.json".to_string());
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read seed baseline {path}: {e}"));
    let seed = serde_json::from_str_value(&text)
        .unwrap_or_else(|e| panic!("cannot parse seed baseline {path}: {e}"));

    let tables = [
        (
            "table3_read_fault_page_migration_us",
            FaultPolicy::PageTransfer,
        ),
        (
            "table4_read_fault_thread_migration_us",
            FaultPolicy::ThreadMigration,
        ),
    ];

    let mut rows = Vec::new();
    let mut failures = Vec::new();
    for (key, policy) in tables {
        let Some(Value::Array(seed_rows)) = seed.get(key) else {
            panic!("seed baseline {path} has no array field '{key}'");
        };
        for seed_row in seed_rows {
            let network = match seed_row.get("network") {
                Some(Value::String(name)) => name.clone(),
                other => panic!("row of '{key}' has no network name: {other:?}"),
            };
            let seed_total = seed_row
                .get("total_us")
                .and_then(number)
                .unwrap_or_else(|| panic!("row '{network}' of '{key}' has no total_us"));
            let profile = profiles::all()
                .into_iter()
                .find(|p| p.name == network)
                .unwrap_or_else(|| panic!("unknown network profile '{network}' in baseline"));
            let measured = measure_read_fault(profile, policy).total_us;
            let drift = (measured - seed_total) / seed_total;
            let verdict = if drift.abs() > THRESHOLD {
                failures.push(format!(
                    "{key} / {network}: measured {measured:.1} us vs seed {seed_total:.1} us \
                     ({:+.1}% > ±{:.0}%)",
                    drift * 100.0,
                    THRESHOLD * 100.0
                ));
                "FAIL"
            } else {
                "ok"
            };
            rows.push(vec![
                key.split('_').next().unwrap_or(key).to_string(),
                network,
                format!("{seed_total:.1}"),
                format!("{measured:.1}"),
                format!("{:+.2}%", drift * 100.0),
                verdict.to_string(),
            ]);
        }
    }

    println!("Perf gate: read-fault totals vs {path} (threshold ±10%)\n");
    println!(
        "{}",
        markdown_table(
            &[
                "Table",
                "Network",
                "Seed (us)",
                "Measured (us)",
                "Drift",
                "Gate"
            ],
            &rows
        )
    );
    if failures.is_empty() {
        println!("All totals within the ±10% envelope.");
    } else {
        eprintln!("Perf gate FAILED:");
        for failure in &failures {
            eprintln!("  {failure}");
        }
        eprintln!(
            "If the change is intentional, regenerate BENCH_seed.json with the table3/table4 \
             binaries and commit it."
        );
        std::process::exit(1);
    }
}
