//! Perf-regression gate: re-measures the Table 3 / Table 4 read-fault
//! totals on every network profile and compares them against the recorded
//! seed baseline (`BENCH_seed.json`). Exits non-zero when any total deviates
//! from the baseline by more than 10% — in *either* direction: the numbers
//! are calibrated against the paper, so an unexplained speed-up is as
//! suspicious as a slow-down in a virtual-time simulation.
//!
//! Alongside the (virtual-time) read-fault envelope, the gate re-measures
//! the *wall-clock* scheduler hand-off and enforces two envelopes: the
//! PR 6 envelope — the continuation hand-off must stay at least
//! [`CONTINUATION_MIN_SPEEDUP`]× faster per step than the futex OS-thread
//! baton — and the PR 3 envelope — the futex baton must stay at least
//! [`HANDOFF_MIN_SPEEDUP`]× faster than the legacy Condvar baton. Speed-up
//! ratios are used rather than absolute nanoseconds so the gates are robust
//! across machines; the recorded absolutes from `BENCH_pr3.json` (futex vs
//! Condvar, PR 3 era) and `BENCH_pr6.json` (all three modes) are printed
//! for context when present.
//!
//! Usage: `compare [path/to/BENCH_seed.json] [path/to/BENCH_pr3.json]`
//! (defaults: `BENCH_seed.json` / `BENCH_pr3.json` in the working directory
//! — the repository root under `cargo run`; `BENCH_pr6.json` is always read
//! from the working directory).
//!
//! Run in CI on every PR so perf-affecting changes must either stay inside
//! the envelope or consciously regenerate the baseline.

use dsmpm2_bench::{markdown_table, measure_handoff, probe_fan_in, probe_single_transfer};
use dsmpm2_madeleine::{profiles, LossyConfig, TransportBackend, TransportTuning};
use dsmpm2_workloads::false_sharing::{run_false_sharing, FalseSharingConfig};
use dsmpm2_workloads::{measure_read_fault, FaultPolicy};
use serde::Value;

const THRESHOLD: f64 = 0.10;
/// Line granularity on the false-sharing kernel must move at least this
/// many times fewer wire bytes than whole pages (PR 10 acceptance: ≥2×).
/// Virtual-time measurement, so the margin is machine-independent; the
/// measured ratio is ~40× for the single-writer protocols.
const GRANULARITY_MIN_BYTES_RATIO: f64 = 2.0;
/// The one-sided fast path must serve at least this fraction of the
/// uncontended remote read fetches (PR 10 acceptance: ≥90%, zero handler
/// wakes on the served ones).
const ONE_SIDED_MIN_SERVE_FRACTION: f64 = 0.9;
/// The futex baton must beat the Condvar baton by at least this factor
/// (PR 3 acceptance: ≥2× fewer wall-clock ns per step). The margin is wide
/// even on a single-CPU host, where the futex baton parks immediately
/// (`handoff_spin` auto-tunes to 0): one park/unpark pair per side still
/// beats the legacy path's multiple mutex sections, condvar waits and
/// broadcasts per step — measured 4.3× on a 1-vCPU container. A
/// below-threshold first measurement is re-measured once with 3× the steps
/// before the gate fails, to ride out noisy neighbours on shared runners.
const HANDOFF_MIN_SPEEDUP: f64 = 2.0;
/// The continuation hand-off must beat the futex OS-thread baton by at
/// least this factor (PR 6 acceptance: ≥10× fewer wall-clock ns per step).
/// A continuation grant is two userspace stack switches on the scheduler's
/// own OS thread; a baton grant is two futex wake-ups and an OS reschedule,
/// which costs microseconds — measured ~30× on a 1-vCPU container.
const CONTINUATION_MIN_SPEEDUP: f64 = 10.0;
/// Re-measuring here (rather than trusting the `sched_handoff` step's
/// BENCH_pr3.json from the same CI run) costs ~2 s and keeps the gate
/// honest against stale or hand-edited baselines.
const HANDOFF_STEPS: u64 = 40_000;
const HANDOFF_TRIALS: u32 = 3;

fn number(value: &Value) -> Option<f64> {
    match value {
        Value::Float(x) => Some(*x),
        Value::UInt(n) => Some(*n as f64),
        Value::Int(n) => Some(*n as f64),
        _ => None,
    }
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_seed.json".to_string());
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read seed baseline {path}: {e}"));
    let seed = serde_json::from_str_value(&text)
        .unwrap_or_else(|e| panic!("cannot parse seed baseline {path}: {e}"));

    let tables = [
        (
            "table3_read_fault_page_migration_us",
            FaultPolicy::PageTransfer,
        ),
        (
            "table4_read_fault_thread_migration_us",
            FaultPolicy::ThreadMigration,
        ),
    ];

    let mut rows = Vec::new();
    let mut failures = Vec::new();
    for (key, policy) in tables {
        let Some(Value::Array(seed_rows)) = seed.get(key) else {
            panic!("seed baseline {path} has no array field '{key}'");
        };
        for seed_row in seed_rows {
            let network = match seed_row.get("network") {
                Some(Value::String(name)) => name.clone(),
                other => panic!("row of '{key}' has no network name: {other:?}"),
            };
            let seed_total = seed_row
                .get("total_us")
                .and_then(number)
                .unwrap_or_else(|| panic!("row '{network}' of '{key}' has no total_us"));
            let profile = profiles::all()
                .into_iter()
                .find(|p| p.name == network)
                .unwrap_or_else(|| panic!("unknown network profile '{network}' in baseline"));
            let measured = measure_read_fault(profile, policy).total_us;
            let drift = (measured - seed_total) / seed_total;
            let verdict = if drift.abs() > THRESHOLD {
                failures.push(format!(
                    "{key} / {network}: measured {measured:.1} us vs seed {seed_total:.1} us \
                     ({:+.1}% > ±{:.0}%)",
                    drift * 100.0,
                    THRESHOLD * 100.0
                ));
                "FAIL"
            } else {
                "ok"
            };
            rows.push(vec![
                key.split('_').next().unwrap_or(key).to_string(),
                network,
                format!("{seed_total:.1}"),
                format!("{measured:.1}"),
                format!("{:+.2}%", drift * 100.0),
                verdict.to_string(),
            ]);
        }
    }

    println!("Perf gate: read-fault totals vs {path} (threshold ±10%)\n");
    println!(
        "{}",
        markdown_table(
            &[
                "Table",
                "Network",
                "Seed (us)",
                "Measured (us)",
                "Drift",
                "Gate"
            ],
            &rows
        )
    );

    // ----- transport backend envelope (virtual time) ------------------------
    //
    // The `Ideal` backend *is* the calibrated cost model: a single
    // uncontended page transfer must take exactly
    // `model.page_transfer_time(4096)` — zero drift allowed, so a transport
    // refactor can never silently change the calibrated costs. The
    // `Contended` backend and a loss-free `Lossy` backend must agree on the
    // uncontended case (their queues are empty); the contended fan-in
    // column shows where they stop agreeing, informationally.
    let lossless = TransportTuning {
        backend: TransportBackend::Lossy(LossyConfig {
            drop_per_mille: 0,
            dup_per_mille: 0,
            ..LossyConfig::default()
        }),
    };
    let mut transport_rows = Vec::new();
    for model in profiles::all() {
        let expected = model.page_transfer_time(4096);
        let mut cells = vec![
            model.name.clone(),
            format!("{:.1}", expected.as_micros_f64()),
        ];
        let mut verdict = "ok";
        for tuning in [
            TransportTuning::ideal(),
            TransportTuning::contended(),
            lossless,
        ] {
            let probed = probe_single_transfer(&model, tuning);
            cells.push(format!("{:.1}", probed.as_micros_f64()));
            if probed != expected {
                verdict = "FAIL";
                failures.push(format!(
                    "transport / {} / {}: uncontended 4 kB transfer took {} vs model {} \
                     (exact match required)",
                    model.name,
                    tuning.backend.name(),
                    probed,
                    expected
                ));
            }
        }
        let fan_in = probe_fan_in(&model, TransportTuning::contended(), 3, 2);
        cells.push(format!("{:.1}", fan_in.as_micros_f64()));
        cells.push(verdict.to_string());
        transport_rows.push(cells);
    }
    println!("Transport gate: uncontended 4 kB transfer must match the model exactly\n");
    println!(
        "{}",
        markdown_table(
            &[
                "Network",
                "Model (us)",
                "Ideal (us)",
                "Contended (us)",
                "Lossless (us)",
                "Fan-in 3x2 contended (us)",
                "Gate"
            ],
            &transport_rows
        )
    );

    // ----- scheduler hand-off envelope (wall clock) -------------------------
    let pr3_path = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "BENCH_pr3.json".to_string());
    let mut m = measure_handoff(HANDOFF_STEPS, HANDOFF_TRIALS);
    if m.speedup < HANDOFF_MIN_SPEEDUP || m.continuation_speedup < CONTINUATION_MIN_SPEEDUP {
        // Wall-clock ratios can be disturbed by a noisy neighbour on shared
        // CI runners; re-measure once with a longer run before declaring a
        // regression, and keep the better of the two measurements.
        eprintln!(
            "hand-off ratios (futex/Condvar {:.2}x, continuation/futex {:.2}x) below \
             threshold on first measurement; re-measuring with {}x steps to rule out \
             scheduling noise",
            m.speedup, m.continuation_speedup, 3
        );
        let retry = measure_handoff(HANDOFF_STEPS * 3, HANDOFF_TRIALS);
        let failing = |x: &dsmpm2_bench::HandoffMeasurement| {
            u32::from(x.speedup < HANDOFF_MIN_SPEEDUP)
                + u32::from(x.continuation_speedup < CONTINUATION_MIN_SPEEDUP)
        };
        if failing(&retry) < failing(&m)
            || (failing(&retry) == failing(&m)
                && retry.continuation_speedup > m.continuation_speedup)
        {
            m = retry;
        }
    }
    println!(
        "Hand-off gate: continuation {:.0} ns/step vs futex {:.0} ns/step vs Condvar \
         {:.0} ns/step — continuation/futex {:.2}x (required \
         ≥{CONTINUATION_MIN_SPEEDUP:.1}x), futex/Condvar {:.2}x (required \
         ≥{HANDOFF_MIN_SPEEDUP:.1}x)",
        m.continuation_ns_per_step,
        m.futex_ns_per_step,
        m.condvar_ns_per_step,
        m.continuation_speedup,
        m.speedup
    );
    match std::fs::read_to_string(&pr3_path)
        .ok()
        .and_then(|text| serde_json::from_str_value(&text).ok())
    {
        Some(baseline) => {
            let get = |key: &str| {
                baseline
                    .get("sched_handoff")
                    .and_then(|h| h.get(key))
                    .and_then(number)
            };
            if let (Some(futex), Some(condvar)) =
                (get("futex_ns_per_step"), get("condvar_ns_per_step"))
            {
                println!(
                    "  recorded in {pr3_path}: futex {futex:.0} ns/step, Condvar {condvar:.0} \
                     ns/step (absolute numbers are machine-dependent and informational)"
                );
            }
        }
        None => {
            println!("  note: no readable {pr3_path}; regenerate it with the sched_handoff binary")
        }
    }
    match std::fs::read_to_string("BENCH_pr6.json")
        .ok()
        .and_then(|text| serde_json::from_str_value(&text).ok())
    {
        Some(baseline) => {
            let get = |key: &str| {
                baseline
                    .get("sched_handoff")
                    .and_then(|h| h.get(key))
                    .and_then(number)
            };
            if let (Some(cont), Some(futex)) =
                (get("continuation_ns_per_step"), get("futex_ns_per_step"))
            {
                println!(
                    "  recorded in BENCH_pr6.json: continuation {cont:.0} ns/step, futex \
                     {futex:.0} ns/step (absolute numbers are machine-dependent and \
                     informational)"
                );
            }
        }
        None => println!(
            "  note: no readable BENCH_pr6.json; regenerate it with the sched_handoff binary"
        ),
    }
    // ----- coherence granularity + one-sided read envelope (virtual time) ---
    //
    // Deterministic virtual-time measurements, so unlike the wall-clock
    // hand-off gate there is no noise margin to manage: the ratios are
    // bit-stable on every machine. `BENCH_pr10.json` records the same
    // numbers from the `line_coherence` binary for context.
    let fs_nodes = 4;
    let fs_proto = "li_hudak_fixed";
    let page_run = run_false_sharing(&FalseSharingConfig::small(fs_nodes), fs_proto);
    let line_run = {
        let mut config = FalseSharingConfig::small(fs_nodes);
        config.tuning = config.tuning.with_granularity(64);
        run_false_sharing(&config, fs_proto)
    };
    let bytes_ratio =
        page_run.wire.envelope_bytes as f64 / line_run.wire.envelope_bytes.max(1) as f64;
    println!(
        "Granularity gate ({fs_proto}, false sharing, {fs_nodes} nodes): page {} wire bytes \
         in {} — 64 B lines {} wire bytes in {} ({bytes_ratio:.1}x fewer bytes, required \
         ≥{GRANULARITY_MIN_BYTES_RATIO:.1}x; strictly less virtual time and identical memory \
         required)",
        page_run.wire.envelope_bytes,
        page_run.elapsed,
        line_run.wire.envelope_bytes,
        line_run.elapsed
    );
    if line_run.final_slots != page_run.final_slots {
        failures.push(format!(
            "granularity: 64 B lines changed the false-sharing kernel's final counters \
             ({fs_proto}, {fs_nodes} nodes)"
        ));
    }
    if bytes_ratio < GRANULARITY_MIN_BYTES_RATIO {
        failures.push(format!(
            "granularity: 64 B lines moved only {bytes_ratio:.2}x fewer wire bytes than whole \
             pages ({} vs {}, required ≥{GRANULARITY_MIN_BYTES_RATIO:.1}x)",
            line_run.wire.envelope_bytes, page_run.wire.envelope_bytes
        ));
    }
    if line_run.elapsed.as_nanos() >= page_run.elapsed.as_nanos() {
        failures.push(format!(
            "granularity: 64 B lines took {} vs {} at page granularity (strictly less virtual \
             time required)",
            line_run.elapsed, page_run.elapsed
        ));
    }
    let one_sided_run = {
        let mut config = FalseSharingConfig::read_mostly(fs_nodes);
        config.tuning = config.tuning.with_one_sided_reads();
        run_false_sharing(&config, fs_proto)
    };
    let fetches = one_sided_run.stats.one_sided_serves + one_sided_run.stats.one_sided_busy;
    let serve_fraction = if fetches == 0 {
        0.0
    } else {
        one_sided_run.stats.one_sided_serves as f64 / fetches as f64
    };
    println!(
        "One-sided gate ({fs_proto}, read-mostly, {fs_nodes} nodes): {} of {fetches} read \
         fetches served at delivery instant ({:.0}%, required \
         ≥{:.0}%), {} handler wakes",
        one_sided_run.stats.one_sided_serves,
        serve_fraction * 100.0,
        ONE_SIDED_MIN_SERVE_FRACTION * 100.0,
        one_sided_run.stats.fetch_handler_wakes
    );
    if fetches == 0 || serve_fraction < ONE_SIDED_MIN_SERVE_FRACTION {
        failures.push(format!(
            "one-sided reads: only {} of {fetches} uncontended read fetches served one-sided \
             (required ≥{:.0}%)",
            one_sided_run.stats.one_sided_serves,
            ONE_SIDED_MIN_SERVE_FRACTION * 100.0
        ));
    }
    if one_sided_run.stats.fetch_handler_wakes != one_sided_run.stats.one_sided_busy {
        failures.push(format!(
            "one-sided reads: {} handler wakes for {} refused fetches (served fetches must \
             never wake the handler)",
            one_sided_run.stats.fetch_handler_wakes, one_sided_run.stats.one_sided_busy
        ));
    }
    match std::fs::read_to_string("BENCH_pr10.json")
        .ok()
        .and_then(|text| serde_json::from_str_value(&text).ok())
    {
        Some(baseline) => {
            let line_row = baseline
                .get("false_sharing_granularity")
                .and_then(|rows| match rows {
                    Value::Array(rows) => rows
                        .iter()
                        .find(|r| {
                            r.get("granularity").and_then(number) == Some(64.0)
                                && matches!(r.get("protocol"),
                                            Some(Value::String(p)) if p == fs_proto)
                        })
                        .and_then(|r| r.get("bytes_ratio_vs_page"))
                        .and_then(number),
                    _ => None,
                });
            if let Some(recorded) = line_row {
                println!(
                    "  recorded in BENCH_pr10.json: {recorded:.1}x fewer bytes at 64 B lines \
                     (virtual-time numbers; machine-independent)"
                );
            }
        }
        None => println!(
            "  note: no readable BENCH_pr10.json; regenerate it with the line_coherence binary"
        ),
    }
    println!();

    if m.speedup < HANDOFF_MIN_SPEEDUP {
        failures.push(format!(
            "sched_handoff: futex baton only {:.2}x faster than Condvar \
             ({:.0} vs {:.0} ns/step, required ≥{HANDOFF_MIN_SPEEDUP:.1}x)",
            m.speedup, m.futex_ns_per_step, m.condvar_ns_per_step
        ));
    }
    if m.continuation_speedup < CONTINUATION_MIN_SPEEDUP {
        failures.push(format!(
            "sched_handoff: continuation hand-off only {:.2}x faster than the futex baton \
             ({:.0} vs {:.0} ns/step, required ≥{CONTINUATION_MIN_SPEEDUP:.1}x)",
            m.continuation_speedup, m.continuation_ns_per_step, m.futex_ns_per_step
        ));
    }
    println!();

    if failures.is_empty() {
        println!("All totals within the ±10% envelope; hand-off envelope holds.");
    } else {
        eprintln!("Perf gate FAILED:");
        for failure in &failures {
            eprintln!("  {failure}");
        }
        eprintln!(
            "If the change is intentional, regenerate BENCH_seed.json with the table3/table4 \
             binaries and commit it."
        );
        std::process::exit(1);
    }
}
