//! Ablation studies beyond the paper's tables: sensitivity of the headline
//! results to the design parameters DESIGN.md calls out.
//!
//! * protocol-overhead sensitivity — how Table 3's total changes when the
//!   26 µs software overhead is varied;
//! * threads-per-node sweep on the TSP workload (the paper uses one thread
//!   per node; more threads increase contention on the bound page);
//! * diff-density sweep for `hbrc_mw` (how much of a page is modified before
//!   release);
//! * fixed vs dynamic distributed manager (`li_hudak_fixed` vs `li_hudak`):
//!   request-forwarding behaviour on an ownership-migrating workload;
//! * lazy vs eager release consistency (`hlrc_notices` vs `hbrc_mw`):
//!   invalidation traffic seen by nodes that never re-synchronize;
//! * SPLASH-2-style kernel × protocol matrix (matmul, SOR, LU, radix);
//! * page-table sharding × message batching (ablations 7–9);
//! * transport backends — Ideal vs Contended vs Lossy on the same workload
//!   must give identical memory with distinct wire/timing statistics, and
//!   the lossy run must replay bit-identically from its seed (ablation 10);
//! * time-window batching — a 50 µs `batch_window` must coalesce strictly
//!   more than same-instant batching, with identical memory (ablation 11).
//!
//! Usage: `ablations [--quick]`.

use dsmpm2_bench::{markdown_table, write_json};
use dsmpm2_core::{
    DsmAttr, DsmCosts, DsmRuntime, DsmTuning, HomePolicy, NodeId, Pm2Cluster, Pm2Config,
};
use dsmpm2_madeleine::{profiles, TransportTuning};
use dsmpm2_pm2::Engine;
use dsmpm2_protocols::{register_all_protocols, register_builtin_protocols};
use dsmpm2_sim::SimDuration;
use dsmpm2_workloads::tsp::{run_tsp, TspConfig};
use dsmpm2_workloads::{lu, matmul, radix, sor};
use parking_lot::Mutex;
use serde::Serialize;
use std::sync::Arc;

#[derive(Serialize)]
struct OverheadPoint {
    overhead_us: f64,
    fault_total_us: f64,
}

fn fault_total_with_overhead(overhead_us: f64) -> f64 {
    let engine = Engine::new();
    let cluster = Pm2Cluster::new(&engine, Pm2Config::bip_myrinet(2));
    let costs = DsmCosts {
        page_protocol_overhead_us: overhead_us,
        ..DsmCosts::default()
    };
    let rt = DsmRuntime::with_cluster_and_costs(cluster, costs);
    let protos = register_builtin_protocols(&rt);
    rt.set_default_protocol(protos.li_hudak);
    let addr = rt.dsm_malloc(4096, DsmAttr::default().home(HomePolicy::Fixed(NodeId(0))));
    let elapsed = Arc::new(Mutex::new(SimDuration::ZERO));
    let e = elapsed.clone();
    rt.spawn_dsm_thread(NodeId(1), "faulter", move |ctx| {
        let start = ctx.pm2.now();
        let _ = ctx.read::<u64>(addr);
        *e.lock() = ctx.pm2.now().since(start);
    });
    let mut engine = engine;
    engine.run().unwrap();
    let v = elapsed.lock().as_micros_f64();
    v
}

#[derive(Serialize)]
struct TspThreadsPoint {
    protocol: String,
    threads_total: usize,
    elapsed_ms: f64,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");

    // --- Ablation 1: protocol-overhead sensitivity -------------------------
    println!("Ablation 1: read-fault total vs protocol overhead (BIP/Myrinet)\n");
    let mut rows = Vec::new();
    let mut points = Vec::new();
    for overhead in [0.0, 13.0, 26.0, 52.0, 104.0] {
        let total = fault_total_with_overhead(overhead);
        rows.push(vec![format!("{overhead:.0}"), format!("{total:.0}")]);
        points.push(OverheadPoint {
            overhead_us: overhead,
            fault_total_us: total,
        });
    }
    println!(
        "{}",
        markdown_table(&["Protocol overhead (us)", "Read-fault total (us)"], &rows)
    );
    write_json("ablation_overhead", &points);

    // --- Ablation 2: TSP node-count scaling per protocol --------------------
    println!("Ablation 2: TSP scaling with cluster size (smaller instance)\n");
    let cities = if quick { 9 } else { 11 };
    let mut rows = Vec::new();
    let mut tsp_points = Vec::new();
    for nodes in [1usize, 2, 4] {
        for proto in ["li_hudak", "migrate_thread"] {
            let mut config = TspConfig::paper(nodes);
            config.cities = cities;
            let r = run_tsp(&config, proto);
            rows.push(vec![
                proto.to_string(),
                nodes.to_string(),
                format!("{:.1}", r.elapsed.as_millis_f64()),
            ]);
            tsp_points.push(TspThreadsPoint {
                protocol: proto.to_string(),
                threads_total: nodes,
                elapsed_ms: r.elapsed.as_millis_f64(),
            });
        }
    }
    println!(
        "{}",
        markdown_table(&["Protocol", "Nodes", "Run time (ms, virtual)"], &rows)
    );
    write_json("ablation_tsp_scaling", &tsp_points);

    // --- Ablation 3: network profile sweep for the same fault --------------
    println!("Ablation 3: read-fault total across network profiles (default overhead)\n");
    let mut rows = Vec::new();
    for net in profiles::all() {
        let b = dsmpm2_workloads::measure_read_fault(
            net.clone(),
            dsmpm2_workloads::FaultPolicy::PageTransfer,
        );
        rows.push(vec![net.name.clone(), format!("{:.0}", b.total_us)]);
    }
    println!(
        "{}",
        markdown_table(&["Network", "Read-fault total (us)"], &rows)
    );

    // --- Ablation 4: fixed vs dynamic distributed manager ------------------
    println!(
        "\nAblation 4: fixed vs dynamic distributed manager (ownership migrates around 4 nodes)\n"
    );
    let mut rows = Vec::new();
    let mut manager_points = Vec::new();
    for proto in ["li_hudak", "li_hudak_fixed"] {
        let m = ownership_migration_study(proto);
        rows.push(vec![
            proto.to_string(),
            format!("{}", m.faults),
            format!("{}", m.forwards),
            format!("{:.2}", m.forwards as f64 / m.faults.max(1) as f64),
            format!("{:.1}", m.elapsed_ms),
        ]);
        manager_points.push(m);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "Protocol",
                "Faults",
                "Request forwards",
                "Forwards/fault",
                "Run time (ms)"
            ],
            &rows
        )
    );
    write_json("ablation_manager", &manager_points);

    // --- Ablation 5: lazy vs eager release consistency ----------------------
    println!("\nAblation 5: lazy vs eager release consistency (bystander holds a stale copy)\n");
    let mut rows = Vec::new();
    let mut lazy_points = Vec::new();
    for proto in ["hbrc_mw", "hlrc_notices"] {
        let m = bystander_study(proto, if quick { 8 } else { 32 });
        rows.push(vec![
            proto.to_string(),
            format!("{}", m.invalidations),
            format!("{}", m.diffs),
            format!("{:.1}", m.elapsed_ms),
        ]);
        lazy_points.push(m);
    }
    println!(
        "{}",
        markdown_table(
            &["Protocol", "Invalidations", "Diffs", "Run time (ms)"],
            &rows
        )
    );
    write_json("ablation_laziness", &lazy_points);

    // --- Ablation 6: SPLASH-2-style kernel x protocol matrix ----------------
    println!("\nAblation 6: SPLASH-2-style kernels under five protocols (virtual ms)\n");
    let kernel_protocols = [
        "li_hudak",
        "li_hudak_fixed",
        "erc_sw",
        "hbrc_mw",
        "hlrc_notices",
    ];
    let nodes = if quick { 2 } else { 4 };
    let mut rows = Vec::new();
    let mut kernel_points = Vec::new();
    for kernel in ["matmul", "sor", "lu", "radix"] {
        let mut row = vec![kernel.to_string()];
        for proto in kernel_protocols {
            let elapsed_ms = run_kernel(kernel, proto, nodes, quick);
            row.push(format!("{elapsed_ms:.1}"));
            kernel_points.push(KernelPoint {
                kernel: kernel.to_string(),
                protocol: proto.to_string(),
                nodes,
                elapsed_ms,
            });
        }
        rows.push(row);
    }
    let mut header = vec!["Kernel"];
    header.extend(kernel_protocols);
    println!("{}", markdown_table(&header, &rows));
    write_json("ablation_kernels", &kernel_points);

    // --- Ablation 7: page-table sharding x message batching ----------------
    println!(
        "\nAblation 7: sharded page table x per-tick message batching (SOR, hbrc_mw, 4 nodes)\n"
    );
    let mut rows = Vec::new();
    let mut tuning_points = Vec::new();
    let mut reference: Option<(Vec<u64>, u64)> = None;
    for (label, tuning) in [
        ("unsharded, unbatched", DsmTuning::legacy()),
        (
            "sharded, unbatched",
            DsmTuning {
                page_table_shards: 8,
                batch_messages: false,
                batch_window: Default::default(),
                granularity: 0,
                one_sided_reads: false,
            },
        ),
        (
            "unsharded, batched",
            DsmTuning {
                page_table_shards: 1,
                batch_messages: true,
                batch_window: Default::default(),
                granularity: 0,
                one_sided_reads: false,
            },
        ),
        (
            "sharded, batched",
            DsmTuning {
                page_table_shards: 8,
                batch_messages: true,
                batch_window: Default::default(),
                granularity: 0,
                one_sided_reads: false,
            },
        ),
    ] {
        let config = sor::SorConfig {
            size: if quick { 16 } else { 32 },
            iterations: 4,
            omega: 1.25,
            nodes: 4,
            network: profiles::bip_myrinet(),
            compute_per_cell_us: 0.05,
            tuning,
            sim: Default::default(),
            transport: Default::default(),
        };
        let r = sor::run_sor(&config, "hbrc_mw");
        assert!(
            (r.checksum - sor::sequential_checksum(&config)).abs() < 1e-6,
            "{label}: checksum diverged from the sequential oracle"
        );
        match &reference {
            None => reference = Some((r.final_cells.clone(), r.wire_messages)),
            Some((cells, unbatched_messages)) => {
                assert_eq!(
                    &r.final_cells, cells,
                    "{label}: final memory diverged from the unsharded/unbatched baseline"
                );
                if tuning.batch_messages {
                    assert!(
                        r.wire_messages <= *unbatched_messages,
                        "{label}: batching must never add wire messages \
                         ({} vs {unbatched_messages})",
                        r.wire_messages
                    );
                }
            }
        }
        rows.push(vec![
            label.to_string(),
            tuning.page_table_shards.to_string(),
            tuning.batch_messages.to_string(),
            r.wire_messages.to_string(),
            r.stats.coherence_batches.to_string(),
            r.stats.coherence_batched_messages.to_string(),
            format!("{:.1}", r.elapsed.as_micros_f64() / 1000.0),
        ]);
        tuning_points.push(TuningPoint {
            configuration: label.to_string(),
            page_table_shards: tuning.page_table_shards,
            batch_messages: tuning.batch_messages,
            wire_messages: r.wire_messages,
            coherence_batches: r.stats.coherence_batches,
            coherence_batched_messages: r.stats.coherence_batched_messages,
            elapsed_ms: r.elapsed.as_micros_f64() / 1000.0,
        });
    }
    println!(
        "{}",
        markdown_table(
            &[
                "Configuration",
                "Shards",
                "Batching",
                "Wire messages",
                "Batches",
                "Batched msgs",
                "Run time (ms)"
            ],
            &rows
        )
    );
    println!(
        "All four configurations produce bit-identical final memory (asserted above). SOR's\n\
         block-homed pages give each release at most one diff per destination, so batching\n\
         has little to coalesce here — the aggregation win shows up when several pages share\n\
         a home, measured next."
    );
    write_json("ablation_tuning", &tuning_points);

    // --- Ablation 8: batched vs unbatched message count --------------------
    println!(
        "\nAblation 8: per-tick batching on a home-based scatter workload (hbrc_mw, 3 nodes)\n"
    );
    let (unbatched, unbatched_memory) = diff_aggregation_study(false, quick);
    let (batched, batched_memory) = diff_aggregation_study(true, quick);
    assert_eq!(
        unbatched_memory, batched_memory,
        "batching changed the final shared memory"
    );
    assert!(
        batched.wire_messages < unbatched.wire_messages,
        "batching must put strictly fewer messages on the wire ({} vs {})",
        batched.wire_messages,
        unbatched.wire_messages
    );
    let rows: Vec<Vec<String>> = [&unbatched, &batched]
        .iter()
        .map(|m| {
            vec![
                if m.batch_messages {
                    "batched"
                } else {
                    "unbatched"
                }
                .to_string(),
                m.wire_messages.to_string(),
                m.coherence_batches.to_string(),
                m.coherence_batched_messages.to_string(),
                format!("{:.1}", m.elapsed_ms),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(
            &[
                "Configuration",
                "Wire messages",
                "Batches",
                "Batched msgs",
                "Run time (ms)"
            ],
            &rows
        )
    );
    println!(
        "Identical final memory, {} vs {} wire messages ({:.1}% fewer) — every release's\n\
         diffs to the shared home travel in one envelope (asserted above).",
        batched.wire_messages,
        unbatched.wire_messages,
        (1.0 - batched.wire_messages as f64 / unbatched.wire_messages as f64) * 100.0
    );
    write_json("ablation_batching", &[unbatched, batched]);

    // --- Ablation 9: hbrc_mw home-side release invalidation burst -----------
    println!(
        "\nAblation 9: home-side release invalidation burst (hbrc_mw, 3 nodes, home writes its \
         own pages)\n"
    );
    let burst_tuning = |batch_messages: bool| DsmTuning {
        page_table_shards: 8,
        batch_messages,
        batch_window: Default::default(),
        granularity: 0,
        one_sided_reads: false,
    };
    let (unbatched, unbatched_memory) = home_release_burst_study(burst_tuning(false), quick);
    let (batched, batched_memory) = home_release_burst_study(burst_tuning(true), quick);
    assert_eq!(
        unbatched_memory, batched_memory,
        "batching changed the final shared memory of the home-burst workload"
    );
    assert!(
        batched.wire_messages < unbatched.wire_messages,
        "the home-side invalidation burst must coalesce into strictly fewer wire messages \
         ({} vs {})",
        batched.wire_messages,
        unbatched.wire_messages
    );
    assert!(
        batched.coherence_batched_messages > 0,
        "the batcher found nothing to coalesce in the home-side burst"
    );
    let rows: Vec<Vec<String>> = [&unbatched, &batched]
        .iter()
        .map(|m| {
            vec![
                if m.batch_messages {
                    "batched"
                } else {
                    "unbatched"
                }
                .to_string(),
                m.wire_messages.to_string(),
                m.coherence_batches.to_string(),
                m.coherence_batched_messages.to_string(),
                format!("{:.1}", m.elapsed_ms),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(
            &[
                "Configuration",
                "Wire messages",
                "Batches",
                "Batched msgs",
                "Run time (ms)"
            ],
            &rows
        )
    );
    println!(
        "hbrc_mw's home now sends the whole release-time invalidation round as one same-tick \
         burst (previously it waited for each page's acks before invalidating the next page), \
         so the per-tick batcher folds the per-target invalidations — and the targets' \
         acknowledgements — into single envelopes: {} vs {} wire messages with bit-identical \
         final memory (asserted above).",
        batched.wire_messages, unbatched.wire_messages
    );
    write_json("ablation_home_burst", &[&unbatched, &batched]);

    // --- Ablation 10: transport backends (Ideal vs Contended vs Lossy) ------
    println!(
        "\nAblation 10: transport backends on SOR (hbrc_mw, 4 nodes) — identical memory, \
         distinct wire behaviour\n"
    );
    let sor_with = |transport: TransportTuning| {
        let config = sor::SorConfig {
            size: if quick { 16 } else { 32 },
            iterations: 4,
            omega: 1.25,
            nodes: 4,
            network: profiles::bip_myrinet(),
            compute_per_cell_us: 0.05,
            tuning: Default::default(),
            sim: Default::default(),
            transport,
        };
        sor::run_sor(&config, "hbrc_mw")
    };
    let lossy_tuning = TransportTuning::lossy(0xD5);
    let ideal = sor_with(TransportTuning::ideal());
    let contended = sor_with(TransportTuning::contended());
    let lossy = sor_with(lossy_tuning);
    let lossy_replay = sor_with(lossy_tuning);
    assert_eq!(
        contended.final_cells, ideal.final_cells,
        "the contended backend changed the final shared memory"
    );
    assert_eq!(
        lossy.final_cells, ideal.final_cells,
        "the lossy backend changed the final shared memory"
    );
    assert!(
        contended.wire.contention_stall_ns() > 0,
        "the contended backend never stalled a frame"
    );
    assert!(
        contended.elapsed > ideal.elapsed,
        "NIC contention must cost virtual time ({} vs {})",
        contended.elapsed,
        ideal.elapsed
    );
    assert!(
        lossy.wire.drops > 0 && lossy.wire.retransmits > 0,
        "the lossy backend never dropped a frame"
    );
    assert!(
        lossy.elapsed > ideal.elapsed,
        "retransmissions must cost virtual time ({} vs {})",
        lossy.elapsed,
        ideal.elapsed
    );
    assert_eq!(
        (lossy.elapsed, lossy.wire, &lossy.final_cells),
        (
            lossy_replay.elapsed,
            lossy_replay.wire,
            &lossy_replay.final_cells
        ),
        "the lossy backend must replay bit-identically from the same seed"
    );
    let mut transport_points = Vec::new();
    let rows: Vec<Vec<String>> = [
        ("ideal", &ideal),
        ("contended", &contended),
        ("lossy (seed 0xD5)", &lossy),
    ]
    .iter()
    .map(|(label, r)| {
        transport_points.push(TransportPoint {
            backend: label.to_string(),
            elapsed_ms: r.elapsed.as_micros_f64() / 1000.0,
            wire_messages: r.wire_messages,
            contention_stall_us: r.wire.contention_stall_ns() as f64 / 1000.0,
            drops: r.wire.drops,
            retransmits: r.wire.retransmits,
            duplicates: r.wire.duplicates,
        });
        vec![
            label.to_string(),
            format!("{:.1}", r.elapsed.as_micros_f64() / 1000.0),
            r.wire_messages.to_string(),
            format!("{:.1}", r.wire.contention_stall_ns() as f64 / 1000.0),
            r.wire.drops.to_string(),
            r.wire.retransmits.to_string(),
            r.wire.duplicates.to_string(),
        ]
    })
    .collect();
    println!(
        "{}",
        markdown_table(
            &[
                "Backend",
                "Run time (ms)",
                "Wire messages",
                "NIC stall (us)",
                "Drops",
                "Retransmits",
                "Duplicates"
            ],
            &rows
        )
    );
    println!(
        "All three backends converge to bit-identical final memory (asserted above); the \
         contended run pays {:.1} us of NIC stalls and the lossy run retransmits {} dropped \
         frames, and the lossy run replays bit-identically from its seed (asserted above).",
        contended.wire.contention_stall_ns() as f64 / 1000.0,
        lossy.wire.drops
    );
    write_json("ablation_transport", &transport_points);

    // --- Ablation 11: time-window batching ----------------------------------
    println!("\nAblation 11: time-window batching on the home-burst workload (hbrc_mw, 3 nodes)\n");
    let windowed_tuning = DsmTuning {
        page_table_shards: 8,
        batch_messages: true,
        batch_window: SimDuration::from_micros(50),
        granularity: 0,
        one_sided_reads: false,
    };
    // Ablation 9's `batched` run *is* the window-0 configuration — reuse it
    // rather than re-simulating a bit-identical deterministic run.
    let (instant, instant_memory) = (batched, batched_memory);
    let (windowed, windowed_memory) = home_release_burst_study(windowed_tuning, quick);
    assert_eq!(
        instant_memory, windowed_memory,
        "the batching window changed the final shared memory"
    );
    assert!(
        windowed.wire_messages < instant.wire_messages,
        "a 50 us batching window must coalesce strictly more ({} vs {})",
        windowed.wire_messages,
        instant.wire_messages
    );
    let rows: Vec<Vec<String>> = [&instant, &windowed]
        .iter()
        .map(|m| {
            vec![
                format!("window {:.0} us", m.batch_window_us),
                m.wire_messages.to_string(),
                m.coherence_batches.to_string(),
                m.coherence_batched_messages.to_string(),
                format!("{:.1}", m.elapsed_ms),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(
            &[
                "Configuration",
                "Wire messages",
                "Batches",
                "Batched msgs",
                "Run time (ms)"
            ],
            &rows
        )
    );
    println!(
        "Same-instant batching already coalesces each release's same-tick burst; the 50 us \
         window additionally folds the targets' acknowledgements — which trickle back a few \
         microseconds apart because each batched sub-message pays its own handler-thread \
         creation — into single envelopes: {} vs {} wire messages, identical final memory \
         (asserted above).",
        windowed.wire_messages, instant.wire_messages
    );
    write_json("ablation_batch_window", &[instant, windowed]);

    // --- Ablation 12: coherence granularity on the false-sharing kernel -----
    println!(
        "\nAblation 12: coherence granularity on the false-sharing kernel (4 nodes, 64-byte \
         stride — every counter in its own line at 64-byte granularity)\n"
    );
    use dsmpm2_workloads::false_sharing::{run_false_sharing, FalseSharingConfig};
    let fs_nodes = 4;
    let mut rows = Vec::new();
    let mut granularity_points = Vec::new();
    for proto in ["li_hudak_fixed", "erc_sw", "hbrc_mw"] {
        let mut reference: Option<(Vec<u64>, u64, u64)> = None;
        for granularity in [0usize, 256, 64] {
            let mut config = FalseSharingConfig::small(fs_nodes);
            config.tuning = config.tuning.with_granularity(granularity);
            let r = run_false_sharing(&config, proto);
            let label = if granularity == 0 {
                "page".to_string()
            } else {
                format!("{granularity} B")
            };
            match &reference {
                None => {
                    reference = Some((
                        r.final_slots.clone(),
                        r.wire.envelope_bytes,
                        r.elapsed.as_nanos(),
                    ))
                }
                Some((slots, page_bytes, page_elapsed)) => {
                    assert_eq!(
                        &r.final_slots, slots,
                        "{proto}: granularity {granularity} changed the final counters"
                    );
                    assert!(
                        r.wire.envelope_bytes * 2 <= *page_bytes,
                        "{proto} at {granularity} B must move at least 2x fewer wire bytes \
                         than whole pages ({} vs {page_bytes})",
                        r.wire.envelope_bytes
                    );
                    assert!(
                        r.elapsed.as_nanos() < *page_elapsed,
                        "{proto} at {granularity} B must finish in strictly less virtual time \
                         ({} vs {page_elapsed} ns)",
                        r.elapsed.as_nanos()
                    );
                }
            }
            rows.push(vec![
                proto.to_string(),
                label.clone(),
                r.wire_messages.to_string(),
                r.wire.envelope_bytes.to_string(),
                format!("{:.1}", r.elapsed.as_micros_f64() / 1000.0),
            ]);
            granularity_points.push(GranularityPoint {
                protocol: proto.to_string(),
                granularity,
                wire_messages: r.wire_messages,
                envelope_bytes: r.wire.envelope_bytes,
                elapsed_ms: r.elapsed.as_micros_f64() / 1000.0,
            });
        }
    }
    println!(
        "{}",
        markdown_table(
            &[
                "Protocol",
                "Granularity",
                "Wire messages",
                "Wire bytes",
                "Run time (ms)"
            ],
            &rows
        )
    );
    println!(
        "Same final counters at every granularity (asserted above); line granularity ends the \
         page ping-pong — disjoint 64-byte counters stop sharing a coherence unit, so each \
         sub-page run moves at least 2x fewer wire bytes and strictly less virtual time \
         (asserted above)."
    );
    write_json("ablation_granularity", &granularity_points);

    // --- Ablation 13: one-sided home reads on the read-mostly kernel --------
    println!(
        "\nAblation 13: one-sided home reads (read-mostly false sharing, 4 nodes, \
         li_hudak_fixed)\n"
    );
    let mut rows = Vec::new();
    let mut one_sided_points = Vec::new();
    let mut reference: Option<Vec<u64>> = None;
    for one_sided in [false, true] {
        let mut config = FalseSharingConfig::read_mostly(fs_nodes);
        if one_sided {
            config.tuning = config.tuning.with_one_sided_reads();
        }
        let r = run_false_sharing(&config, "li_hudak_fixed");
        match &reference {
            None => reference = Some(r.final_slots.clone()),
            Some(slots) => assert_eq!(
                &r.final_slots, slots,
                "the one-sided read path changed the final counters"
            ),
        }
        if one_sided {
            let attempts = r.stats.one_sided_serves + r.stats.one_sided_busy;
            assert!(
                r.stats.one_sided_serves > 0 && r.stats.one_sided_serves * 10 >= attempts * 9,
                "uncontended read-mostly sharing must serve >=90% of fetches one-sided \
                 ({} of {attempts})",
                r.stats.one_sided_serves
            );
            assert_eq!(
                r.stats.fetch_handler_wakes, r.stats.one_sided_busy,
                "every refused fetch (and only those) must wake the fallback handler"
            );
        }
        rows.push(vec![
            if one_sided {
                "one-sided"
            } else {
                "handler path"
            }
            .to_string(),
            r.stats.one_sided_serves.to_string(),
            r.stats.fetch_handler_wakes.to_string(),
            r.wire.hook_consumed.to_string(),
            format!("{:.1}", r.elapsed.as_micros_f64() / 1000.0),
        ]);
        one_sided_points.push(OneSidedPoint {
            one_sided,
            one_sided_serves: r.stats.one_sided_serves,
            one_sided_busy: r.stats.one_sided_busy,
            fetch_handler_wakes: r.stats.fetch_handler_wakes,
            hook_consumed: r.wire.hook_consumed,
            elapsed_ms: r.elapsed.as_micros_f64() / 1000.0,
        });
    }
    println!(
        "{}",
        markdown_table(
            &[
                "Configuration",
                "One-sided serves",
                "Handler wakes",
                "Envelopes consumed at delivery",
                "Run time (ms)"
            ],
            &rows
        )
    );
    println!(
        "Identical final memory (asserted above); with the fast path on, the home answers \
         uncontended read fetches at message-delivery instant — no handler-thread wake, no \
         scheduler round-trip (>=90% of fetches served one-sided, asserted above)."
    );
    write_json("ablation_one_sided", &one_sided_points);
}

#[derive(Serialize)]
struct GranularityPoint {
    protocol: String,
    granularity: usize,
    wire_messages: u64,
    envelope_bytes: u64,
    elapsed_ms: f64,
}

#[derive(Serialize)]
struct OneSidedPoint {
    one_sided: bool,
    one_sided_serves: u64,
    one_sided_busy: u64,
    fetch_handler_wakes: u64,
    hook_consumed: u64,
    elapsed_ms: f64,
}

#[derive(Serialize)]
struct TransportPoint {
    backend: String,
    elapsed_ms: f64,
    wire_messages: u64,
    contention_stall_us: f64,
    drops: u64,
    retransmits: u64,
    duplicates: u64,
}

/// Workload exercising `hbrc_mw`'s *home-side* release invalidation: the
/// home node itself updates every page it hosts inside one critical section
/// while two other nodes hold read copies. At release, the home must
/// invalidate the copysets of all its modified pages — the path that used to
/// serialize page by page (send, wait for acks, next page) and now sends all
/// rounds as one burst before collecting the acknowledgements.
fn home_release_burst_study(tuning: DsmTuning, quick: bool) -> (BatchingPoint, Vec<u8>) {
    let pages: u64 = if quick { 4 } else { 8 };
    let rounds = if quick { 3 } else { 6 };
    let nodes = 3usize;
    let config = Pm2Config::bip_myrinet(nodes).with_dsm_tuning(tuning);
    let engine = Engine::with_config(config.engine_config());
    let rt = DsmRuntime::new(&engine, config);
    let _ = register_all_protocols(&rt);
    rt.set_default_protocol(rt.protocol_by_name("hbrc_mw").unwrap());
    let base = rt.dsm_malloc(
        pages * 4096,
        DsmAttr::default().home(HomePolicy::Fixed(NodeId(0))),
    );
    let lock = rt.create_lock(Some(NodeId(0)));
    let barrier = rt.create_barrier(nodes, None);
    let finish = Arc::new(Mutex::new(SimDuration::ZERO));
    for node in 0..nodes {
        let finish = finish.clone();
        rt.spawn_dsm_thread(NodeId(node), format!("burst{node}"), move |ctx| {
            let start = ctx.pm2.now();
            for round in 0..rounds {
                if node == 0 {
                    // The home updates a slot in every one of its pages
                    // inside one critical section; the release invalidates
                    // every reader's copy of every page.
                    ctx.dsm_lock(lock);
                    for page in 0..pages {
                        ctx.write::<u64>(base.add(page * 4096), (round * 10) as u64);
                    }
                    ctx.dsm_unlock(lock);
                } else {
                    // The readers re-cache a copy of every page each round.
                    ctx.dsm_lock(lock);
                    let mut sum = 0u64;
                    for page in 0..pages {
                        sum = sum.wrapping_add(ctx.read::<u64>(base.add(page * 4096)));
                    }
                    std::hint::black_box(sum);
                    ctx.dsm_unlock(lock);
                }
                ctx.dsm_barrier(barrier);
            }
            let mut f = finish.lock();
            let elapsed = ctx.pm2.now().since(start);
            if elapsed > *f {
                *f = elapsed;
            }
        });
    }
    let mut engine = engine;
    engine.run().expect("home-burst study must not deadlock");
    let mut final_memory = Vec::new();
    for page in 0..pages {
        let mut buf = vec![0u8; 8];
        rt.frames(NodeId(0))
            .read(base.add(page * 4096).page(), 0, &mut buf);
        final_memory.extend_from_slice(&buf);
    }
    let stats = rt.stats().snapshot();
    let point = BatchingPoint {
        batch_messages: tuning.batch_messages,
        batch_window_us: tuning.batch_window.as_micros_f64(),
        wire_messages: rt.cluster().network().stats().messages(),
        coherence_batches: stats.coherence_batches,
        coherence_batched_messages: stats.coherence_batched_messages,
        elapsed_ms: finish.lock().as_micros_f64() / 1000.0,
    };
    (point, final_memory)
}

#[derive(Serialize)]
struct BatchingPoint {
    batch_messages: bool,
    batch_window_us: f64,
    wire_messages: u64,
    coherence_batches: u64,
    coherence_batched_messages: u64,
    elapsed_ms: f64,
}

/// A home-based scatter workload where batching has real work to do: every
/// page is homed on node 0 (the "server" placement of home-based protocols),
/// and each worker updates a strided slot in every page inside one critical
/// section — so each release flushes one diff per page, all addressed to the
/// same home within one virtual-time tick. Returns the measurements and the
/// final shared memory (the home's reference copies).
fn diff_aggregation_study(batch_messages: bool, quick: bool) -> (BatchingPoint, Vec<u8>) {
    let pages: u64 = if quick { 4 } else { 8 };
    let rounds = if quick { 3 } else { 6 };
    let nodes = 3usize;
    let engine = Engine::new();
    let tuning = DsmTuning {
        page_table_shards: 8,
        batch_messages,
        batch_window: Default::default(),
        granularity: 0,
        one_sided_reads: false,
    };
    let rt = DsmRuntime::new(
        &engine,
        Pm2Config::bip_myrinet(nodes).with_dsm_tuning(tuning),
    );
    let _ = register_all_protocols(&rt);
    rt.set_default_protocol(rt.protocol_by_name("hbrc_mw").unwrap());
    let base = rt.dsm_malloc(
        pages * 4096,
        DsmAttr::default().home(HomePolicy::Fixed(NodeId(0))),
    );
    let lock = rt.create_lock(Some(NodeId(0)));
    let barrier = rt.create_barrier(nodes, None);
    let finish = Arc::new(Mutex::new(SimDuration::ZERO));
    for node in 0..nodes {
        let finish = finish.clone();
        rt.spawn_dsm_thread(NodeId(node), format!("scatter{node}"), move |ctx| {
            let start = ctx.pm2.now();
            for round in 0..rounds {
                ctx.dsm_lock(lock);
                for page in 0..pages {
                    let addr = base.add(page * 4096 + node as u64 * 8);
                    ctx.write::<u64>(addr, (round * 100 + node) as u64);
                }
                ctx.dsm_unlock(lock);
            }
            ctx.dsm_barrier(barrier);
            let mut f = finish.lock();
            let elapsed = ctx.pm2.now().since(start);
            if elapsed > *f {
                *f = elapsed;
            }
        });
    }
    let mut engine = engine;
    engine.run().expect("scatter study must not deadlock");
    // Final shared memory: the home (node 0) holds the reference copy of
    // every page.
    let mut final_memory = Vec::new();
    for page in 0..pages {
        let mut buf = vec![0u8; nodes * 8];
        rt.frames(NodeId(0))
            .read(base.add(page * 4096).page(), 0, &mut buf);
        final_memory.extend_from_slice(&buf);
    }
    let stats = rt.stats().snapshot();
    let point = BatchingPoint {
        batch_messages: tuning.batch_messages,
        batch_window_us: tuning.batch_window.as_micros_f64(),
        wire_messages: rt.cluster().network().stats().messages(),
        coherence_batches: stats.coherence_batches,
        coherence_batched_messages: stats.coherence_batched_messages,
        elapsed_ms: finish.lock().as_micros_f64() / 1000.0,
    };
    (point, final_memory)
}

#[derive(Serialize)]
struct TuningPoint {
    configuration: String,
    page_table_shards: usize,
    batch_messages: bool,
    wire_messages: u64,
    coherence_batches: u64,
    coherence_batched_messages: u64,
    elapsed_ms: f64,
}

#[derive(Serialize)]
struct ManagerPoint {
    protocol: String,
    faults: u64,
    forwards: u64,
    elapsed_ms: f64,
}

/// Ownership of a single hot page migrates around the cluster, then every
/// node reads it: the request-routing behaviour of the two distributed
/// managers differs (hint chains vs a one-hop bounce through the manager).
fn ownership_migration_study(proto_name: &str) -> ManagerPoint {
    let engine = Engine::new();
    let rt = DsmRuntime::new(&engine, Pm2Config::bip_myrinet(4));
    let _ = register_all_protocols(&rt);
    rt.set_default_protocol(rt.protocol_by_name(proto_name).unwrap());
    let addr = rt.dsm_malloc(4096, DsmAttr::default().home(HomePolicy::Fixed(NodeId(0))));
    let b = rt.create_barrier(4, None);
    let finish = Arc::new(Mutex::new(SimDuration::ZERO));
    for node in 0..4usize {
        let finish = finish.clone();
        rt.spawn_dsm_thread(NodeId(node), format!("w{node}"), move |ctx| {
            let start = ctx.pm2.now();
            for round in 0..8usize {
                if round % 4 == node {
                    ctx.write::<u64>(addr, (round * 10 + node) as u64);
                }
                ctx.dsm_barrier(b);
            }
            let _ = ctx.read::<u64>(addr);
            let mut f = finish.lock();
            let elapsed = ctx.pm2.now().since(start);
            if elapsed > *f {
                *f = elapsed;
            }
        });
    }
    let mut engine = engine;
    engine.run().expect("manager study must not deadlock");
    let stats = rt.stats().snapshot();
    let elapsed_ms = finish.lock().as_micros_f64() / 1000.0;
    ManagerPoint {
        protocol: proto_name.to_string(),
        faults: stats.total_faults(),
        forwards: stats.request_forwards,
        elapsed_ms,
    }
}

#[derive(Serialize)]
struct LazinessPoint {
    protocol: String,
    invalidations: u64,
    diffs: u64,
    elapsed_ms: f64,
}

/// A producer repeatedly updates a shared datum under a lock while a
/// bystander node holds a read copy and never re-synchronizes: the eager
/// protocol invalidates the bystander on every release, the lazy one never
/// does.
fn bystander_study(proto_name: &str, updates: usize) -> LazinessPoint {
    let engine = Engine::new();
    let rt = DsmRuntime::new(&engine, Pm2Config::bip_myrinet(3));
    let _ = register_all_protocols(&rt);
    rt.set_default_protocol(rt.protocol_by_name(proto_name).unwrap());
    let addr = rt.dsm_malloc(4096, DsmAttr::default().home(HomePolicy::Fixed(NodeId(0))));
    let lock = rt.create_lock(Some(NodeId(0)));
    let b = rt.create_barrier(3, None);
    let finish = Arc::new(Mutex::new(SimDuration::ZERO));
    let f = finish.clone();
    rt.spawn_dsm_thread(NodeId(2), "bystander", move |ctx| {
        let _ = ctx.read::<u64>(addr);
        ctx.dsm_barrier(b);
    });
    rt.spawn_dsm_thread(NodeId(1), "producer", move |ctx| {
        ctx.dsm_barrier(b);
        let start = ctx.pm2.now();
        for i in 0..updates {
            ctx.dsm_lock(lock);
            ctx.write::<u64>(addr, i as u64 + 1);
            ctx.dsm_unlock(lock);
        }
        *f.lock() = ctx.pm2.now().since(start);
    });
    rt.spawn_dsm_thread(NodeId(0), "home", move |ctx| {
        ctx.dsm_barrier(b);
    });
    let mut engine = engine;
    engine.run().expect("bystander study must not deadlock");
    let stats = rt.stats().snapshot();
    let elapsed_ms = finish.lock().as_micros_f64() / 1000.0;
    LazinessPoint {
        protocol: proto_name.to_string(),
        invalidations: stats.invalidations,
        diffs: stats.diffs_sent,
        elapsed_ms,
    }
}

#[derive(Serialize)]
struct KernelPoint {
    kernel: String,
    protocol: String,
    nodes: usize,
    elapsed_ms: f64,
}

/// One SPLASH-2-style kernel run; every run is validated against its
/// sequential oracle before the timing is reported.
fn run_kernel(kernel: &str, proto: &str, nodes: usize, quick: bool) -> f64 {
    match kernel {
        "matmul" => {
            let config = matmul::MatmulConfig {
                n: if quick { 16 } else { 32 },
                nodes,
                network: profiles::bip_myrinet(),
                compute_per_madd_us: 0.01,
                tuning: Default::default(),
                sim: Default::default(),
                transport: Default::default(),
            };
            let r = matmul::run_matmul(&config, proto);
            assert!((r.checksum - matmul::sequential_checksum(config.n)).abs() < 1e-6);
            r.elapsed.as_micros_f64() / 1000.0
        }
        "sor" => {
            let config = sor::SorConfig {
                size: if quick { 16 } else { 32 },
                iterations: 4,
                omega: 1.25,
                nodes,
                network: profiles::bip_myrinet(),
                compute_per_cell_us: 0.05,
                tuning: Default::default(),
                sim: Default::default(),
                transport: Default::default(),
            };
            let r = sor::run_sor(&config, proto);
            assert!((r.checksum - sor::sequential_checksum(&config)).abs() < 1e-6);
            r.elapsed.as_micros_f64() / 1000.0
        }
        "lu" => {
            let config = lu::LuConfig {
                n: if quick { 12 } else { 24 },
                nodes,
                network: profiles::bip_myrinet(),
                compute_per_update_us: 0.02,
            };
            let r = lu::run_lu(&config, proto);
            assert!((r.checksum - lu::sequential_checksum(config.n)).abs() < 1e-6);
            r.elapsed.as_micros_f64() / 1000.0
        }
        "radix" => {
            let config = radix::RadixConfig {
                keys: if quick { 128 } else { 256 },
                max_key: 1 << 16,
                seed: 42,
                nodes,
                network: profiles::bip_myrinet(),
                compute_per_key_us: 0.05,
            };
            let r = radix::run_radix(&config, proto);
            let mut oracle = radix::input_keys(&config);
            oracle.sort_unstable();
            assert_eq!(r.sorted, oracle);
            r.elapsed.as_micros_f64() / 1000.0
        }
        other => panic!("unknown kernel {other}"),
    }
}
