//! `line_coherence` — the PR 10 granularity and one-sided-read benchmark.
//!
//! Measures, in virtual time, what sub-page coherence lines buy on the
//! false-sharing kernel and what the one-sided home-read fast path buys on
//! its read-mostly variant, and records the numbers machine-readably:
//!
//! * `results/line_coherence.json` — like every other harness binary;
//! * `BENCH_pr10.json` (working directory, next to `BENCH_seed.json`) —
//!   the baseline the `compare` gate reads for context while enforcing the
//!   two PR 10 envelopes (line granularity moves ≥2× fewer wire bytes in
//!   strictly less virtual time with identical memory; the one-sided path
//!   serves ≥90% of uncontended remote read fetches with zero handler
//!   wakes).
//!
//! Both halves are *virtual-time* measurements of a deterministic
//! simulation, so — unlike the wall-clock `sched_handoff` numbers — they
//! are bit-stable across machines.
//!
//! Usage: `line_coherence [--quick]`.

use dsmpm2_bench::{markdown_table, write_json};
use dsmpm2_workloads::false_sharing::{run_false_sharing, FalseSharingConfig};
use serde::Serialize;

/// One protocol's page-vs-line comparison on the false-sharing kernel.
#[derive(Serialize)]
struct GranularityRow {
    protocol: String,
    granularity: usize,
    wire_messages: u64,
    envelope_bytes: u64,
    envelopes: u64,
    elapsed_ns: u64,
    bytes_ratio_vs_page: f64,
    time_ratio_vs_page: f64,
}

/// The one-sided read-path measurement on the read-mostly kernel.
#[derive(Serialize)]
struct OneSidedRow {
    one_sided: bool,
    remote_read_fetches: u64,
    one_sided_serves: u64,
    one_sided_busy: u64,
    fetch_handler_wakes: u64,
    serve_fraction: f64,
    elapsed_ns: u64,
}

#[derive(Serialize)]
struct Pr10Baseline {
    false_sharing_granularity: Vec<GranularityRow>,
    one_sided_reads: Vec<OneSidedRow>,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let nodes = 4;
    let iterations = if quick { 8 } else { 32 };

    // ----- half 1: false sharing, page vs line granularity ------------------
    println!(
        "line_coherence: false-sharing kernel, {nodes} nodes, 64-byte stride, {iterations} \
         rounds (virtual time)\n"
    );
    let mut rows = Vec::new();
    let mut granularity_rows = Vec::new();
    for proto in ["li_hudak_fixed", "erc_sw", "hbrc_mw"] {
        let mut page_baseline: Option<(Vec<u64>, u64, u64)> = None;
        for granularity in [0usize, 256, 64] {
            let mut config = FalseSharingConfig::small(nodes);
            config.iterations = iterations;
            config.tuning = config.tuning.with_granularity(granularity);
            let r = run_false_sharing(&config, proto);
            let (bytes_ratio, time_ratio) = match &page_baseline {
                None => {
                    page_baseline = Some((
                        r.final_slots.clone(),
                        r.wire.envelope_bytes,
                        r.elapsed.as_nanos(),
                    ));
                    (1.0, 1.0)
                }
                Some((slots, page_bytes, page_ns)) => {
                    assert_eq!(
                        &r.final_slots, slots,
                        "{proto}: granularity {granularity} changed the final counters"
                    );
                    assert!(
                        r.wire.envelope_bytes * 2 <= *page_bytes,
                        "{proto} at {granularity} B moved {} wire bytes vs {page_bytes} at page \
                         granularity (>=2x reduction required)",
                        r.wire.envelope_bytes
                    );
                    assert!(
                        r.elapsed.as_nanos() < *page_ns,
                        "{proto} at {granularity} B took {} ns vs {page_ns} ns at page \
                         granularity (strict reduction required)",
                        r.elapsed.as_nanos()
                    );
                    (
                        *page_bytes as f64 / r.wire.envelope_bytes.max(1) as f64,
                        *page_ns as f64 / r.elapsed.as_nanos().max(1) as f64,
                    )
                }
            };
            rows.push(vec![
                proto.to_string(),
                if granularity == 0 {
                    "page".to_string()
                } else {
                    format!("{granularity} B")
                },
                r.wire_messages.to_string(),
                r.wire.envelope_bytes.to_string(),
                format!("{:.1}", r.elapsed.as_micros_f64() / 1000.0),
                format!("{bytes_ratio:.1}x"),
                format!("{time_ratio:.1}x"),
            ]);
            granularity_rows.push(GranularityRow {
                protocol: proto.to_string(),
                granularity,
                wire_messages: r.wire_messages,
                envelope_bytes: r.wire.envelope_bytes,
                envelopes: r.wire.envelopes,
                elapsed_ns: r.elapsed.as_nanos(),
                bytes_ratio_vs_page: bytes_ratio,
                time_ratio_vs_page: time_ratio,
            });
        }
    }
    println!(
        "{}",
        markdown_table(
            &[
                "Protocol",
                "Granularity",
                "Wire messages",
                "Wire bytes",
                "Run time (ms)",
                "Bytes vs page",
                "Time vs page"
            ],
            &rows
        )
    );
    println!(
        "Identical final counters at every granularity; every sub-page run moves >=2x fewer \
         wire bytes in strictly less virtual time (all asserted above)."
    );

    // ----- half 2: one-sided home reads on the read-mostly kernel -----------
    println!("\nOne-sided home reads: read-mostly kernel, {nodes} nodes, li_hudak_fixed\n");
    let mut rows = Vec::new();
    let mut one_sided_rows = Vec::new();
    let mut reference: Option<Vec<u64>> = None;
    for one_sided in [false, true] {
        let mut config = FalseSharingConfig::read_mostly(nodes);
        config.iterations = iterations;
        if one_sided {
            config.tuning = config.tuning.with_one_sided_reads();
        }
        let r = run_false_sharing(&config, "li_hudak_fixed");
        match &reference {
            None => reference = Some(r.final_slots.clone()),
            Some(slots) => assert_eq!(
                &r.final_slots, slots,
                "the one-sided read path changed the final counters"
            ),
        }
        let fetches = r.stats.one_sided_serves + r.stats.one_sided_busy;
        let serve_fraction = if fetches == 0 {
            0.0
        } else {
            r.stats.one_sided_serves as f64 / fetches as f64
        };
        if one_sided {
            assert!(
                fetches > 0 && serve_fraction >= 0.9,
                "uncontended read-mostly sharing must serve >=90% of fetches one-sided \
                 ({} of {fetches})",
                r.stats.one_sided_serves
            );
            assert_eq!(
                r.stats.fetch_handler_wakes, r.stats.one_sided_busy,
                "every refused fetch (and only those) must wake the fallback handler"
            );
        }
        rows.push(vec![
            if one_sided {
                "one-sided"
            } else {
                "handler path"
            }
            .to_string(),
            fetches.to_string(),
            r.stats.one_sided_serves.to_string(),
            r.stats.fetch_handler_wakes.to_string(),
            format!("{:.0}%", serve_fraction * 100.0),
            format!("{:.1}", r.elapsed.as_micros_f64() / 1000.0),
        ]);
        one_sided_rows.push(OneSidedRow {
            one_sided,
            remote_read_fetches: fetches,
            one_sided_serves: r.stats.one_sided_serves,
            one_sided_busy: r.stats.one_sided_busy,
            fetch_handler_wakes: r.stats.fetch_handler_wakes,
            serve_fraction,
            elapsed_ns: r.elapsed.as_nanos(),
        });
    }
    println!(
        "{}",
        markdown_table(
            &[
                "Configuration",
                "Read fetches",
                "One-sided serves",
                "Handler wakes",
                "Served one-sided",
                "Run time (ms)"
            ],
            &rows
        )
    );
    println!(
        "Identical final memory; >=90% of the uncontended remote read fetches are served at \
         message-delivery instant with zero handler-thread wakes (asserted above)."
    );

    let baseline = Pr10Baseline {
        false_sharing_granularity: granularity_rows,
        one_sided_reads: one_sided_rows,
    };
    write_json("line_coherence", &baseline);
    match serde_json::to_string_pretty(&baseline) {
        Ok(json) => {
            if let Err(e) = std::fs::write("BENCH_pr10.json", json + "\n") {
                eprintln!("warning: could not write BENCH_pr10.json: {e}");
            } else {
                println!("\nRecorded baseline in BENCH_pr10.json.");
            }
        }
        Err(e) => eprintln!("warning: could not serialize baseline: {e}"),
    }
}
