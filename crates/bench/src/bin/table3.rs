//! Regenerates **Table 3** of the paper: processing a read fault under the
//! page-transfer (page-migration) policy, broken down into page fault,
//! request, 4 kB page transfer and protocol overhead, on the four network
//! profiles.

use dsmpm2_bench::{markdown_table, write_json};
use dsmpm2_madeleine::profiles;
use dsmpm2_workloads::{measure_read_fault, FaultPolicy};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    network: String,
    page_fault_us: f64,
    request_page_us: f64,
    page_transfer_us: f64,
    protocol_overhead_us: f64,
    total_us: f64,
    /// Calibration drift of the measured total against the paper's, in
    /// percent (see the per-row note printed with the table).
    drift_vs_paper_pct: f64,
}

fn main() {
    println!("Table 3: Processing a read fault under page-migration policy (us)\n");
    let paper = [
        ("BIP/Myrinet", 198.0),
        ("TCP/Myrinet", 600.0),
        ("TCP/FastEthernet", 993.0),
        ("SISCI/SCI", 194.0),
    ];
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for net in profiles::all() {
        let b = measure_read_fault(net.clone(), FaultPolicy::PageTransfer);
        let paper_total = paper
            .iter()
            .find(|(n, _)| *n == net.name)
            .map(|(_, t)| *t)
            .unwrap_or(f64::NAN);
        let drift_pct = (b.total_us - paper_total) / paper_total * 100.0;
        rows.push(vec![
            net.name.clone(),
            format!("{:.0}", b.page_fault_us),
            format!("{:.0}", b.request_us),
            format!("{:.0}", b.transfer_us),
            format!("{:.0}", b.overhead_us),
            format!("{:.0}", b.total_us),
            format!("{paper_total:.0}"),
            format!("{drift_pct:+.1}%"),
        ]);
        json_rows.push(Row {
            network: net.name.clone(),
            page_fault_us: b.page_fault_us,
            request_page_us: b.request_us,
            page_transfer_us: b.transfer_us,
            protocol_overhead_us: b.overhead_us,
            total_us: b.total_us,
            drift_vs_paper_pct: drift_pct,
        });
    }
    println!(
        "{}",
        markdown_table(
            &[
                "Network",
                "Page fault",
                "Request page",
                "Page transfer",
                "Protocol overhead",
                "Total (measured)",
                "Total (paper)",
                "Drift"
            ],
            &rows
        )
    );
    println!(
        "Note (calibration drift): measured totals sit ~1-3% below the paper's because the\n\
         component constants (request, transfer, protocol overhead) were fitted to each row\n\
         independently from Tables 3/4, while the paper's totals were measured end-to-end and\n\
         include cross-component effects the breakdown does not attribute. The drift is stable\n\
         and per-row (see the Drift column and drift_vs_paper_pct in results/table3.json); it\n\
         is accepted as documented calibration error rather than re-fitted, so the component\n\
         rows keep matching the paper's breakdown exactly."
    );
    write_json("table3", &json_rows);
}
