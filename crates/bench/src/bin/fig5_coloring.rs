//! Regenerates **Figure 5** of the paper: the minimal-cost map-colouring
//! program (29 eastern-most US states, four colours with different costs),
//! compiled through the Hyperion-style object layer, run on a four-node
//! SISCI/SCI cluster, comparing `java_ic` (inline checks) with `java_pf`
//! (page faults).
//!
//! Usage: `fig5_coloring [num_states] [max_nodes]` — defaults to 29 states
//! and node counts {1, 2, 4}.

use dsmpm2_bench::{markdown_table, write_json};
use dsmpm2_workloads::map_coloring::{run_map_coloring, solve_sequential, ColoringConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    protocol: String,
    nodes: usize,
    states: usize,
    elapsed_ms: f64,
    best_cost: u64,
    inline_checks: u64,
    page_faults: u64,
    page_transfers: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let states: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(29);
    let max_nodes: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
    let node_counts: Vec<usize> = [1usize, 2, 4]
        .into_iter()
        .filter(|&n| n <= max_nodes)
        .collect();

    println!(
        "Figure 5: minimal-cost map colouring, {states} states, SISCI/SCI, java_ic vs java_pf\n"
    );
    if states == 29 {
        println!("sequential optimum (oracle): {}\n", solve_sequential());
    }

    let mut rows = Vec::new();
    let mut points = Vec::new();
    for &nodes in &node_counts {
        for proto in ["java_ic", "java_pf"] {
            let mut config = ColoringConfig::paper(nodes);
            config.num_states = states;
            let result = run_map_coloring(&config, proto);
            rows.push(vec![
                proto.to_string(),
                nodes.to_string(),
                format!("{:.1}", result.elapsed.as_millis_f64()),
                result.best_cost.to_string(),
                result.inline_checks.to_string(),
                result.faults.to_string(),
                result.stats.page_transfers.to_string(),
            ]);
            points.push(Point {
                protocol: proto.to_string(),
                nodes,
                states,
                elapsed_ms: result.elapsed.as_millis_f64(),
                best_cost: result.best_cost,
                inline_checks: result.inline_checks,
                page_faults: result.faults,
                page_transfers: result.stats.page_transfers,
            });
        }
    }
    println!(
        "{}",
        markdown_table(
            &[
                "Protocol",
                "Nodes",
                "Run time (ms, virtual)",
                "Best cost",
                "Inline checks",
                "Page faults",
                "Page transfers"
            ],
            &rows
        )
    );
    println!(
        "Expected shape (paper): java_pf outperforms java_ic because local objects are\n\
         used intensively (every get/put pays a check under java_ic) while remote\n\
         accesses — the only ones that fault under java_pf — are infrequent."
    );
    write_json("fig5_coloring", &points);
}
