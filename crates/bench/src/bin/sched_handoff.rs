//! `sched_handoff` — wall-clock microbenchmark of the scheduler hand-off.
//!
//! Measures the real (not virtual) cost of one simulated step under the
//! three hand-off substrates — continuation (the slice runs as a coroutine
//! on the scheduler's own OS thread), futex-style OS-thread baton, legacy
//! Mutex+Condvar baton — prints the comparison, and records it
//! machine-readably:
//!
//! * `results/sched_handoff.json` — like every other harness binary;
//! * `BENCH_pr6.json` (working directory, next to `BENCH_seed.json`) — the
//!   baseline the `compare` gate reads for context while enforcing the two
//!   hand-off envelopes (continuation ≥10× faster than the futex baton,
//!   futex ≥2× faster than the Condvar baton). `BENCH_pr3.json` is the
//!   PR 3-era record of the futex-vs-Condvar numbers and is left untouched.
//!
//! Usage: `sched_handoff [--quick]`.

use dsmpm2_bench::{markdown_table, measure_handoff, write_json};
use serde::Serialize;

#[derive(Serialize)]
struct Pr6Baseline {
    sched_handoff: dsmpm2_bench::HandoffMeasurement,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let steps = if quick { 30_000 } else { 150_000 };
    let trials = if quick { 3 } else { 5 };

    println!("sched_handoff: wall-clock ns per simulated step ({steps} steps, best of {trials})\n");
    let m = measure_handoff(steps, trials);

    println!(
        "{}",
        markdown_table(
            &["Hand-off", "ns/step", "steps/s"],
            &[
                vec![
                    "continuation (default)".into(),
                    format!("{:.0}", m.continuation_ns_per_step),
                    format!("{:.0}", 1e9 / m.continuation_ns_per_step),
                ],
                vec![
                    "futex baton".into(),
                    format!("{:.0}", m.futex_ns_per_step),
                    format!("{:.0}", 1e9 / m.futex_ns_per_step),
                ],
                vec![
                    "legacy Condvar".into(),
                    format!("{:.0}", m.condvar_ns_per_step),
                    format!("{:.0}", 1e9 / m.condvar_ns_per_step),
                ],
                vec![
                    format!("{}-thread wake burst (solo grants)", m.burst_threads),
                    format!("{:.0}", m.burst_ns_per_grant),
                    format!("{:.0}", 1e9 / m.burst_ns_per_grant),
                ],
            ],
        )
    );
    println!(
        "Speed-ups: continuation {:.2}x over the futex baton; futex {:.2}x over Condvar.",
        m.continuation_speedup, m.speedup
    );

    write_json("sched_handoff", &m);
    let baseline = Pr6Baseline { sched_handoff: m };
    match serde_json::to_string_pretty(&baseline) {
        Ok(json) => {
            if let Err(e) = std::fs::write("BENCH_pr6.json", json + "\n") {
                eprintln!("warning: could not write BENCH_pr6.json: {e}");
            } else {
                println!("\nRecorded baseline in BENCH_pr6.json.");
            }
        }
        Err(e) => eprintln!("warning: could not serialize baseline: {e}"),
    }
}
