//! `sched_handoff` — wall-clock microbenchmark of the scheduler baton.
//!
//! Measures the real (not virtual) cost of one simulated step under the
//! futex-style baton and under the legacy Mutex+Condvar baton, prints the
//! comparison, and records it machine-readably:
//!
//! * `results/sched_handoff.json` — like every other harness binary;
//! * `BENCH_pr3.json` (working directory, next to `BENCH_seed.json`) — the
//!   baseline the `compare` gate reads to enforce the hand-off envelope
//!   (futex must stay ≥2× faster than the Condvar baton).
//!
//! Usage: `sched_handoff [--quick]`.

use dsmpm2_bench::{markdown_table, measure_handoff, write_json};
use serde::Serialize;

#[derive(Serialize)]
struct Pr3Baseline {
    sched_handoff: dsmpm2_bench::HandoffMeasurement,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let steps = if quick { 30_000 } else { 150_000 };
    let trials = if quick { 3 } else { 5 };

    println!("sched_handoff: wall-clock ns per simulated step ({steps} steps, best of {trials})\n");
    let m = measure_handoff(steps, trials);

    println!(
        "{}",
        markdown_table(
            &["Baton", "ns/step", "steps/s"],
            &[
                vec![
                    "futex (default)".into(),
                    format!("{:.0}", m.futex_ns_per_step),
                    format!("{:.0}", 1e9 / m.futex_ns_per_step),
                ],
                vec![
                    "legacy Condvar".into(),
                    format!("{:.0}", m.condvar_ns_per_step),
                    format!("{:.0}", 1e9 / m.condvar_ns_per_step),
                ],
            ],
        )
    );
    println!(
        "Speed-up: {:.2}x fewer wall-clock ns/step with the futex baton.",
        m.speedup
    );

    write_json("sched_handoff", &m);
    let baseline = Pr3Baseline { sched_handoff: m };
    match serde_json::to_string_pretty(&baseline) {
        Ok(json) => {
            if let Err(e) = std::fs::write("BENCH_pr3.json", json + "\n") {
                eprintln!("warning: could not write BENCH_pr3.json: {e}");
            } else {
                println!("\nRecorded baseline in BENCH_pr3.json.");
            }
        }
        Err(e) => eprintln!("warning: could not serialize baseline: {e}"),
    }
}
