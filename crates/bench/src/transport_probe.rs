//! Virtual-time probes of the transport backends, shared by the `compare`
//! perf gate (which pins the `Ideal` backend to the calibrated cost model)
//! and the `transport` bench.

use std::sync::Arc;

use parking_lot::Mutex;

use dsmpm2_madeleine::{
    Network, NetworkModel, NodeId, Topology, TransportTuning, CONTROL_MESSAGE_BYTES,
};
use dsmpm2_sim::{Engine, SimDuration, SimTime};

/// Virtual arrival time of a single, uncontended 4 kB page transfer (plus
/// control header) between two otherwise idle nodes under `tuning`. For the
/// `Ideal` backend this must equal `model.page_transfer_time(4096)` exactly
/// — the calibration seam the `compare` gate pins.
pub fn probe_single_transfer(model: &NetworkModel, tuning: TransportTuning) -> SimDuration {
    let mut engine = Engine::new();
    let net: Network<u8> =
        Network::with_transport(engine.ctl(), model.clone(), Topology::flat(2), tuning);
    let arrived = Arc::new(Mutex::new(SimTime::ZERO));
    let rx = net.endpoint(NodeId(1));
    let a = arrived.clone();
    engine.spawn("rx", move |h| {
        let _ = rx.recv(h);
        *a.lock() = h.global_now();
    });
    let net2 = net.clone();
    engine.spawn("tx", move |h| {
        net2.send(h, NodeId(0), NodeId(1), 0, 4096 + CONTROL_MESSAGE_BYTES);
    });
    engine.run().expect("probe must terminate");
    let arrived = *arrived.lock();
    arrived.since(SimTime::ZERO)
}

/// Virtual completion time of a fan-in burst: `senders` nodes each fire
/// `messages` back-to-back 4 kB transfers at node 0 at virtual time zero;
/// returns the last arrival. Under `Contended` the shared ingress NIC
/// serializes the burst; under `Ideal` the transfers overlap for free.
pub fn probe_fan_in(
    model: &NetworkModel,
    tuning: TransportTuning,
    senders: usize,
    messages: usize,
) -> SimDuration {
    let mut engine = Engine::new();
    let net: Network<u8> = Network::with_transport(
        engine.ctl(),
        model.clone(),
        Topology::flat(senders + 1),
        tuning,
    );
    let last = Arc::new(Mutex::new(SimTime::ZERO));
    let rx = net.endpoint(NodeId(0));
    let l = last.clone();
    let total = senders * messages;
    engine.spawn("rx", move |h| {
        for _ in 0..total {
            let _ = rx.recv(h);
        }
        *l.lock() = h.global_now();
    });
    for s in 1..=senders {
        let net2 = net.clone();
        engine.spawn(format!("tx{s}"), move |h| {
            for _ in 0..messages {
                net2.send(h, NodeId(s), NodeId(0), 0, 4096 + CONTROL_MESSAGE_BYTES);
            }
        });
    }
    engine.run().expect("probe must terminate");
    let last = *last.lock();
    last.since(SimTime::ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsmpm2_madeleine::profiles;

    #[test]
    fn ideal_probe_matches_the_calibrated_model_exactly() {
        for model in profiles::all() {
            let probed = probe_single_transfer(&model, TransportTuning::ideal());
            assert_eq!(probed, model.page_transfer_time(4096), "{}", model.name);
        }
    }

    #[test]
    fn contended_fan_in_is_slower_than_ideal() {
        let model = profiles::bip_myrinet();
        let ideal = probe_fan_in(&model, TransportTuning::ideal(), 3, 4);
        let contended = probe_fan_in(&model, TransportTuning::contended(), 3, 4);
        assert!(contended > ideal, "{contended} vs {ideal}");
    }
}
