//! Wall-clock measurement of the scheduler/thread baton hand-off.
//!
//! Unlike every other number in this harness, this one is *real* time, not
//! virtual time: the baton is the simulator's own hot path (two OS-thread
//! wake-ups per simulated step), so its cost is pure wall-clock overhead
//! that scales every simulation. The measurement runs one simulated thread
//! that yields `steps` times and divides the elapsed wall-clock time by the
//! step count; each step is one event pop, one baton grant and one baton
//! return.

use std::time::Instant;

use dsmpm2_sim::{Engine, EngineConfig, SimTuning};
use serde::Serialize;

/// Result of measuring both hand-off implementations.
#[derive(Clone, Debug, Serialize)]
pub struct HandoffMeasurement {
    /// Simulated yield steps per trial.
    pub steps: u64,
    /// Best-of-trials wall-clock nanoseconds per step, futex baton.
    pub futex_ns_per_step: f64,
    /// Best-of-trials wall-clock nanoseconds per step, legacy Condvar baton.
    pub condvar_ns_per_step: f64,
    /// `condvar_ns_per_step / futex_ns_per_step`.
    pub speedup: f64,
}

/// Wall-clock ns/step of one hand-off implementation (best of `trials`).
pub fn measure_handoff_mode(tuning: SimTuning, steps: u64, trials: u32) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..trials {
        let mut engine = Engine::with_config(EngineConfig {
            tuning,
            ..EngineConfig::default()
        });
        engine.spawn("stepper", move |h| {
            for _ in 0..steps {
                h.yield_now();
            }
        });
        let start = Instant::now();
        engine.run().expect("handoff benchmark must complete");
        let ns = start.elapsed().as_nanos() as f64 / steps as f64;
        if ns < best {
            best = ns;
        }
    }
    best
}

/// Measure both hand-offs back to back (a warm-up trial of each runs first
/// so neither pays first-touch costs).
pub fn measure_handoff(steps: u64, trials: u32) -> HandoffMeasurement {
    measure_handoff_mode(SimTuning::default(), steps / 4, 1);
    measure_handoff_mode(SimTuning::legacy(), steps / 4, 1);
    let futex = measure_handoff_mode(SimTuning::default(), steps, trials);
    let condvar = measure_handoff_mode(SimTuning::legacy(), steps, trials);
    HandoffMeasurement {
        steps,
        futex_ns_per_step: futex,
        condvar_ns_per_step: condvar,
        speedup: condvar / futex,
    }
}
