//! Wall-clock measurement of the scheduler/thread hand-off.
//!
//! Unlike every other number in this harness, this one is *real* time, not
//! virtual time: the hand-off is the simulator's own hot path (one grant and
//! one return per simulated step), so its cost is pure wall-clock overhead
//! that scales every simulation. The measurement runs one simulated thread
//! that yields `steps` times and divides the elapsed wall-clock time by the
//! step count. Three substrates are measured: the continuation mode (the
//! slice runs as a coroutine on the scheduler's own OS thread — two stack
//! switches, no OS scheduling), the futex-style OS-thread baton (two futex
//! wake-ups) and the legacy Mutex+Condvar baton.

use std::time::Instant;

use dsmpm2_sim::{Engine, EngineConfig, HandoffMode, SimTuning};
use serde::Serialize;

/// Result of measuring the hand-off substrates.
#[derive(Clone, Debug, Serialize)]
pub struct HandoffMeasurement {
    /// Simulated yield steps per trial.
    pub steps: u64,
    /// Best-of-trials wall-clock nanoseconds per step, continuation mode.
    pub continuation_ns_per_step: f64,
    /// Best-of-trials wall-clock nanoseconds per step, futex baton.
    pub futex_ns_per_step: f64,
    /// Best-of-trials wall-clock nanoseconds per step, legacy Condvar baton.
    pub condvar_ns_per_step: f64,
    /// `condvar_ns_per_step / futex_ns_per_step` (the PR 3 envelope).
    pub speedup: f64,
    /// `futex_ns_per_step / continuation_ns_per_step` (the PR 6 envelope:
    /// how much cheaper a continuation grant is than an OS-thread baton).
    pub continuation_speedup: f64,
    /// Threads yielding in lockstep in the burst measurement.
    pub burst_threads: u64,
    /// Best-of-trials wall-clock nanoseconds per grant when wakes arrive in
    /// same-instant, same-shard bursts (`burst_threads` continuation
    /// threads yielding in lockstep on one shard) — the regime of the solo
    /// grant fast path, which batches the hand-off's phase-word atomics
    /// across each burst.
    pub burst_ns_per_grant: f64,
}

/// The fixed tunings the harness measures, by mode name.
pub fn tuning_for(mode: HandoffMode) -> SimTuning {
    match mode {
        // Pin modes explicitly: SimTuning::default() honours DSM_SIM_HANDOFF
        // and the benchmark must not silently measure the same mode twice.
        HandoffMode::Continuation => SimTuning::default().with_handoff(HandoffMode::Continuation),
        HandoffMode::Baton => SimTuning::baton(),
        HandoffMode::LegacyCondvar => SimTuning::legacy(),
    }
}

/// Wall-clock ns/step of one hand-off implementation (best of `trials`).
pub fn measure_handoff_mode(tuning: SimTuning, steps: u64, trials: u32) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..trials {
        let mut engine = Engine::with_config(EngineConfig {
            tuning,
            ..EngineConfig::default()
        });
        engine.spawn("stepper", move |h| {
            for _ in 0..steps {
                h.yield_now();
            }
        });
        let start = Instant::now();
        engine.run().expect("handoff benchmark must complete");
        let ns = start.elapsed().as_nanos() as f64 / steps as f64;
        if ns < best {
            best = ns;
        }
    }
    best
}

/// Wall-clock ns/grant of a same-instant, same-shard wake burst: `threads`
/// continuation threads all yield in lockstep, so every instant the
/// scheduler drains one burst of `threads` wakes back to back through one
/// grant source — the path whose per-grant atomics the solo fast path
/// batches away. Best of `trials`.
pub fn measure_handoff_burst(threads: u64, steps_per_thread: u64, trials: u32) -> f64 {
    let tuning = tuning_for(HandoffMode::Continuation);
    let mut best = f64::INFINITY;
    for _ in 0..trials {
        let mut engine = Engine::with_config(EngineConfig {
            tuning,
            ..EngineConfig::default()
        });
        for t in 0..threads {
            engine.spawn(format!("burst-{t}"), move |h| {
                for _ in 0..steps_per_thread {
                    h.yield_now();
                }
            });
        }
        let start = Instant::now();
        engine.run().expect("handoff burst benchmark must complete");
        let ns = start.elapsed().as_nanos() as f64 / (threads * steps_per_thread) as f64;
        if ns < best {
            best = ns;
        }
    }
    best
}

/// Measure all three hand-offs back to back (a warm-up trial of each runs
/// first so none pays first-touch costs).
pub fn measure_handoff(steps: u64, trials: u32) -> HandoffMeasurement {
    for mode in [
        HandoffMode::Continuation,
        HandoffMode::Baton,
        HandoffMode::LegacyCondvar,
    ] {
        measure_handoff_mode(tuning_for(mode), steps / 4, 1);
    }
    let continuation = measure_handoff_mode(tuning_for(HandoffMode::Continuation), steps, trials);
    let futex = measure_handoff_mode(tuning_for(HandoffMode::Baton), steps, trials);
    let condvar = measure_handoff_mode(tuning_for(HandoffMode::LegacyCondvar), steps, trials);
    let burst_threads = 64u64;
    let burst = measure_handoff_burst(burst_threads, (steps / burst_threads).max(1), trials);
    HandoffMeasurement {
        steps,
        continuation_ns_per_step: continuation,
        futex_ns_per_step: futex,
        condvar_ns_per_step: condvar,
        speedup: condvar / futex,
        continuation_speedup: futex / continuation,
        burst_threads,
        burst_ns_per_grant: burst,
    }
}
