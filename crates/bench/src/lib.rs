//! # dsmpm2-bench — benchmark harness for the DSM-PM2 reproduction
//!
//! See the `table3`, `table4`, `fig4_tsp`, `fig5_coloring`, `micro_pm2` and
//! `ablations` binaries (each regenerates one table or figure of the paper)
//! and the Criterion benches under `benches/`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod handoff;
pub mod report;
pub mod scaling;
pub mod transport_probe;

pub use handoff::{measure_handoff, measure_handoff_mode, HandoffMeasurement};
pub use report::{markdown_table, write_json};
pub use scaling::{measure_engine_scaling, ScalingMeasurement, ScalingRow, WORKER_COUNTS};
pub use transport_probe::{probe_fan_in, probe_single_transfer};
