//! Criterion bench for the scheduler hand-off: wall-clock cost of a
//! simulated step (one event pop + one grant + one return) under the
//! continuation, futex-baton and legacy-Condvar substrates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsmpm2_sim::{Engine, EngineConfig, HandoffMode, SimTuning};

fn run_steps(tuning: SimTuning, steps: u64) -> u64 {
    let mut engine = Engine::with_config(EngineConfig {
        tuning,
        ..EngineConfig::default()
    });
    engine.spawn("stepper", move |h| {
        for _ in 0..steps {
            h.yield_now();
        }
    });
    engine.run().expect("bench run must complete").events
}

fn bench_handoff(c: &mut Criterion) {
    let mut group = c.benchmark_group("sched_handoff");
    group.sample_size(10);
    for (label, tuning) in [
        (
            "continuation",
            SimTuning::default().with_handoff(HandoffMode::Continuation),
        ),
        ("futex", SimTuning::baton()),
        ("legacy_condvar", SimTuning::legacy()),
    ] {
        group.bench_with_input(
            BenchmarkId::new("10k_steps", label),
            &tuning,
            |b, &tuning| b.iter(|| run_steps(tuning, 10_000)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_handoff);
criterion_main!(benches);
