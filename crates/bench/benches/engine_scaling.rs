//! Criterion bench for the multi-worker engine: wall-clock time of one
//! 4-node jacobi/hbrc_mw run at 1, 2 and 4 scheduler workers. The virtual
//! result is identical at every worker count (the `engine_scaling` binary
//! asserts it); this bench tracks only what the worker pool does to real
//! time on this host.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsmpm2_pm2::DsmTuning;
use dsmpm2_sim::SimTuning;
use dsmpm2_workloads::jacobi::{run_jacobi, JacobiConfig};

fn bench_engine_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_scaling");
    group.sample_size(5);
    for workers in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("jacobi_4n", format!("{workers}w")),
            &workers,
            |b, &workers| {
                let config = JacobiConfig {
                    size: 16,
                    iterations: 2,
                    nodes: 4,
                    network: dsmpm2_madeleine::profiles::bip_myrinet(),
                    compute_per_cell_us: 0.02,
                    tuning: DsmTuning::default(),
                    sim: SimTuning::default().with_workers(workers),
                    transport: Default::default(),
                };
                b.iter(|| run_jacobi(&config, "hbrc_mw").engine.events)
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_engine_scaling);
criterion_main!(benches);
