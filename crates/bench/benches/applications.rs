//! Criterion bench for the application workloads (reduced-size versions of
//! the Figure 4 and Figure 5 programs plus the Jacobi kernel). The full-size
//! runs that regenerate the figures are the `fig4_tsp` / `fig5_coloring`
//! binaries; these benches keep the end-to-end paths exercised and tracked.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsmpm2_workloads::jacobi::{run_jacobi, JacobiConfig};
use dsmpm2_workloads::map_coloring::{run_map_coloring, ColoringConfig};
use dsmpm2_workloads::tsp::{run_tsp, TspConfig};

fn bench_tsp(c: &mut Criterion) {
    let mut group = c.benchmark_group("tsp_small");
    group.sample_size(10);
    for proto in ["li_hudak", "migrate_thread", "erc_sw", "hbrc_mw"] {
        group.bench_with_input(BenchmarkId::new("9cities_2nodes", proto), &proto, |b, p| {
            let config = TspConfig::small(2, 9);
            b.iter(|| run_tsp(&config, p))
        });
    }
    group.finish();
}

fn bench_coloring(c: &mut Criterion) {
    let mut group = c.benchmark_group("map_coloring_small");
    group.sample_size(10);
    for proto in ["java_ic", "java_pf"] {
        group.bench_with_input(
            BenchmarkId::new("14states_2nodes", proto),
            &proto,
            |b, p| {
                let config = ColoringConfig::small(2, 14);
                b.iter(|| run_map_coloring(&config, p))
            },
        );
    }
    group.finish();
}

fn bench_jacobi(c: &mut Criterion) {
    let mut group = c.benchmark_group("jacobi_small");
    group.sample_size(10);
    for proto in ["li_hudak", "erc_sw", "hbrc_mw"] {
        group.bench_with_input(BenchmarkId::new("32x32_2nodes", proto), &proto, |b, p| {
            let config = JacobiConfig::small(2);
            b.iter(|| run_jacobi(&config, p))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tsp, bench_coloring, bench_jacobi);
criterion_main!(benches);
