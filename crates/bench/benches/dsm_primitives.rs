//! Criterion bench for DSM core primitives: diff computation/application and
//! shared-counter contention under each protocol.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsmpm2_core::{PageDiff, PageId, PAGE_SIZE};
use dsmpm2_madeleine::profiles;
use dsmpm2_workloads::run_shared_counter;

fn bench_diffs(c: &mut Criterion) {
    let mut group = c.benchmark_group("diff");
    let twin = vec![0u8; PAGE_SIZE];
    for modified in [4usize, 64, 1024, PAGE_SIZE] {
        let mut cur = twin.clone();
        cur[..modified].fill(1);
        group.bench_with_input(BenchmarkId::new("compute", modified), &modified, |b, _| {
            b.iter(|| PageDiff::compute(PageId(0), &twin, &cur))
        });
        let diff = PageDiff::compute(PageId(0), &twin, &cur);
        group.bench_with_input(BenchmarkId::new("apply", modified), &modified, |b, _| {
            b.iter(|| {
                let mut target = twin.clone();
                diff.apply(&mut target);
                target
            })
        });
    }
    group.finish();
}

fn bench_shared_counter(c: &mut Criterion) {
    let mut group = c.benchmark_group("shared_counter");
    group.sample_size(10);
    for proto in ["li_hudak", "migrate_thread", "erc_sw", "hbrc_mw"] {
        group.bench_with_input(BenchmarkId::new("3nodes_x8", proto), &proto, |b, proto| {
            b.iter(|| {
                let v = run_shared_counter(3, 8, profiles::bip_myrinet(), proto);
                assert_eq!(v, 24);
                v
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_diffs, bench_shared_counter);
criterion_main!(benches);
