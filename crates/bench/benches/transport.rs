//! Wall-clock cost of the transport backends: how much host time the
//! engine + backend machinery burns to carry a fan-in burst of page-sized
//! messages, per backend. The virtual-time behaviour is covered by the
//! `compare` gate and ablation 10; this bench watches the *simulator's* own
//! overhead so a backend regression (e.g. an accidental global lock or a
//! per-message allocation storm) shows up as wall-clock drift.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsmpm2_bench::probe_fan_in;
use dsmpm2_madeleine::{profiles, LossyConfig, TransportBackend, TransportTuning};

fn bench_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("transport_fan_in");
    group.sample_size(10);
    let model = profiles::bip_myrinet();
    let lossy = TransportTuning {
        backend: TransportBackend::Lossy(LossyConfig {
            seed: 7,
            drop_per_mille: 100,
            dup_per_mille: 20,
            rto_factor: 2,
        }),
    };
    for (label, tuning) in [
        ("ideal", TransportTuning::ideal()),
        ("contended", TransportTuning::contended()),
        ("lossy", lossy),
    ] {
        group.bench_with_input(
            BenchmarkId::new("4x8_pages", label),
            &tuning,
            |b, tuning| {
                b.iter(|| probe_fan_in(&model, *tuning, 4, 8));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_backends);
criterion_main!(benches);
