//! Criterion bench for the PM2 substrate (§2.1 micro-measurements): null RPC
//! round trips and thread migrations on the simulated cluster.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsmpm2_madeleine::profiles;
use dsmpm2_pm2::{service_fn, Engine, NodeId, Pm2Cluster, Pm2Config, RpcClass, RpcReply};
use parking_lot::Mutex;

fn null_rpc(network: dsmpm2_madeleine::NetworkModel, calls: u32) -> f64 {
    let engine = Engine::new();
    let cluster = Pm2Cluster::new(&engine, Pm2Config::new(2, network));
    cluster.register_service(service_fn("null", false, |_ctx, _payload| {
        Some(RpcReply::minimal(()))
    }));
    let total = Arc::new(Mutex::new(0.0));
    let t = total.clone();
    let c = cluster.clone();
    engine.spawn("caller", move |h| {
        let start = h.now();
        for _ in 0..calls {
            let _ = c.rpc_call(
                h,
                NodeId(0),
                NodeId(1),
                "null",
                Box::new(()),
                RpcClass::Minimal,
            );
        }
        *t.lock() = h.now().since(start).as_micros_f64();
    });
    let mut engine = engine;
    engine.run().unwrap();
    let v = *total.lock();
    v
}

fn migration_pingpong(network: dsmpm2_madeleine::NetworkModel, hops: u32) -> f64 {
    let engine = Engine::new();
    let cluster = Pm2Cluster::new(&engine, Pm2Config::new(2, network));
    let total = Arc::new(Mutex::new(0.0));
    let t = total.clone();
    cluster.spawn_thread_on(NodeId(0), "migrator", move |ctx| {
        let start = ctx.now();
        for i in 0..hops {
            ctx.migrate_to(NodeId((1 + i as usize) % 2));
        }
        *t.lock() = ctx.now().since(start).as_micros_f64();
    });
    let mut engine = engine;
    engine.run().unwrap();
    let v = *total.lock();
    v
}

fn bench_pm2(c: &mut Criterion) {
    let mut group = c.benchmark_group("pm2_micro");
    group.sample_size(20);
    for net in [profiles::bip_myrinet(), profiles::sisci_sci()] {
        group.bench_with_input(
            BenchmarkId::new("null_rpc_x32", &net.name),
            &net,
            |b, net| b.iter(|| null_rpc(net.clone(), 32)),
        );
        group.bench_with_input(
            BenchmarkId::new("migration_pingpong_x16", &net.name),
            &net,
            |b, net| b.iter(|| migration_pingpong(net.clone(), 16)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pm2);
criterion_main!(benches);
