//! Criterion bench for the Table 3 / Table 4 experiment: time (wall-clock)
//! to simulate one remote read fault under both fault-handling policies on
//! every network profile. The *virtual-time* results are what the paper's
//! tables report (see the `table3`/`table4` binaries); this bench tracks the
//! cost of the simulation itself and guards against regressions in the fault
//! path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsmpm2_madeleine::profiles;
use dsmpm2_workloads::{measure_read_fault, FaultPolicy};

fn bench_read_fault(c: &mut Criterion) {
    let mut group = c.benchmark_group("read_fault");
    group.sample_size(20);
    for net in profiles::all() {
        group.bench_with_input(
            BenchmarkId::new("page_transfer", &net.name),
            &net,
            |b, net| {
                b.iter(|| {
                    let breakdown = measure_read_fault(net.clone(), FaultPolicy::PageTransfer);
                    assert!(breakdown.total_us > 0.0);
                    breakdown
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("thread_migration", &net.name),
            &net,
            |b, net| {
                b.iter(|| {
                    let breakdown = measure_read_fault(net.clone(), FaultPolicy::ThreadMigration);
                    assert!(breakdown.total_us > 0.0);
                    breakdown
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_read_fault);
criterion_main!(benches);
