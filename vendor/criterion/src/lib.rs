//! Minimal offline stand-in for the `criterion` crate.
//!
//! Implements the subset the benches use (`benchmark_group`, `sample_size`,
//! `bench_with_input`, `bench_function`, `BenchmarkId`, the `criterion_group!`
//! / `criterion_main!` macros and `black_box`) with simple wall-clock timing:
//! each benchmark runs `sample_size` samples after one warm-up pass and
//! reports the **median** per-iteration time with its **median absolute
//! deviation** (a robust noise estimate), plus the mean and min. No plots —
//! the point is that `cargo bench` compiles, runs and prints comparable
//! numbers *with an error bar* offline. Respects `--bench <filter>`-style
//! positional filters by substring match on the benchmark id.
//!
//! **Baselines**: the first run of a benchmark writes its median to
//! `results/criterion/<id>.json`; subsequent runs print the delta versus
//! the stored median next to the fresh numbers. The stored baseline is
//! informational (the `compare` binary owns the hard CI gates); refresh it
//! with `DSMPM2_BENCH_UPDATE_BASELINES=1 cargo bench`.

use std::hint;
use std::time::{Duration, Instant};

pub use std::hint::black_box as _std_black_box;

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier of one benchmark within a group: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Compose an id from a function name and a parameter display value.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Robust summary of one benchmark's timed samples.
#[derive(Clone, Copy, Debug)]
pub struct SampleStats {
    /// Median per-iteration time — robust against a noisy-neighbour outlier.
    pub median: Duration,
    /// Median absolute deviation from the median: the noise estimate
    /// reported next to every number.
    pub mad: Duration,
    /// Arithmetic mean per-iteration time.
    pub mean: Duration,
    /// Fastest sample.
    pub min: Duration,
}

impl SampleStats {
    fn from_samples(samples: &mut [Duration]) -> Self {
        assert!(!samples.is_empty());
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        let min = samples[0];
        let mut deviations: Vec<Duration> = samples.iter().map(|&s| s.abs_diff(median)).collect();
        deviations.sort_unstable();
        let mad = deviations[deviations.len() / 2];
        SampleStats {
            median,
            mad,
            mean,
            min,
        }
    }
}

/// Passed to the measured closure; [`Bencher::iter`] runs and times it.
pub struct Bencher {
    samples: usize,
    /// Sample statistics recorded by the last `iter` call.
    result: Option<SampleStats>,
}

impl Bencher {
    /// Run `routine` once as an untimed warm-up pass, then time `samples`
    /// further runs and summarize them robustly (median + MAD).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        hint::black_box(routine());
        let mut samples = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            hint::black_box(routine());
            samples.push(start.elapsed());
        }
        self.result = Some(SampleStats::from_samples(&mut samples));
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a Criterion,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (criterion's floor of 10 is not
    /// enforced; the shim honours exactly what was asked).
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(1);
        self
    }

    /// Accepted for API compatibility; the shim ignores measurement time.
    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Benchmark `routine`, handing it `input` by reference.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        if !self.criterion.matches(&full) {
            return self;
        }
        let mut bencher = Bencher {
            samples: self.samples,
            result: None,
        };
        routine(&mut bencher, input);
        report(&full, self.samples, bencher.result);
        self
    }

    /// Benchmark `routine` with no input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        if !self.criterion.matches(&full) {
            return self;
        }
        let mut bencher = Bencher {
            samples: self.samples,
            result: None,
        };
        routine(&mut bencher);
        report(&full, self.samples, bencher.result);
        self
    }

    /// End the group (marker for parity with criterion).
    pub fn finish(&mut self) {}
}

fn report(id: &str, samples: usize, result: Option<SampleStats>) {
    match result {
        Some(stats) => {
            let delta = baseline::compare_and_store(id, stats.median);
            println!(
                "bench {id:<60} median {:>12} ± {:>10} mean {:>12} min {:>12} \
                 ({samples} samples, 1 warmup){delta}",
                format_duration(stats.median),
                format_duration(stats.mad),
                format_duration(stats.mean),
                format_duration(stats.min),
            );
        }
        None => println!("bench {id:<60} (no measurement: iter() never called)"),
    }
}

/// Persisted per-bench baselines under `results/criterion/`.
mod baseline {
    use std::path::PathBuf;
    use std::time::Duration;

    /// The workspace root: `cargo bench` sets the working directory to the
    /// *package* (e.g. `crates/bench`), while the harness binaries run from
    /// the workspace root — anchor on the nearest ancestor holding a
    /// `Cargo.lock` so both agree on one `results/criterion/` tree.
    fn results_root() -> PathBuf {
        let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        let mut dir = cwd.clone();
        loop {
            if dir.join("Cargo.lock").exists() {
                return dir;
            }
            if !dir.pop() {
                return cwd;
            }
        }
    }

    fn path_for(root: &std::path::Path, id: &str) -> PathBuf {
        let sanitized: String = id
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        root.join("results")
            .join("criterion")
            .join(format!("{sanitized}.json"))
    }

    /// Minimal hand-rolled parse of the `{"median_ns": N}` baseline file
    /// (the shim must not depend on the workspace's serde shim).
    fn read_median_ns(text: &str) -> Option<u128> {
        let key = "\"median_ns\"";
        let at = text.find(key)? + key.len();
        let rest = text[at..].trim_start().strip_prefix(':')?.trim_start();
        let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
        digits.parse().ok()
    }

    /// Compare `median` against the stored baseline for `id`, storing the
    /// fresh median when there is none yet (or when
    /// `DSMPM2_BENCH_UPDATE_BASELINES` is set). Returns the suffix to
    /// append to the report line.
    pub(super) fn compare_and_store(id: &str, median: Duration) -> String {
        compare_and_store_in(&results_root(), id, median)
    }

    /// Testable core of [`compare_and_store`]: the baseline tree root is
    /// explicit, so tests never mutate the process-global working directory.
    pub(super) fn compare_and_store_in(
        root: &std::path::Path,
        id: &str,
        median: Duration,
    ) -> String {
        let path = path_for(root, id);
        let update = std::env::var_os("DSMPM2_BENCH_UPDATE_BASELINES").is_some();
        let stored = std::fs::read_to_string(&path)
            .ok()
            .as_deref()
            .and_then(read_median_ns);
        match stored {
            Some(base_ns) if !update => {
                let base = base_ns.max(1) as f64;
                let delta = (median.as_nanos() as f64 - base) / base * 100.0;
                format!(" [{delta:+.1}% vs stored median]")
            }
            _ => {
                if let Some(dir) = path.parent() {
                    let _ = std::fs::create_dir_all(dir);
                }
                let json = format!(
                    "{{\n  \"id\": \"{}\",\n  \"median_ns\": {}\n}}\n",
                    id.replace('"', "'"),
                    median.as_nanos()
                );
                match std::fs::write(&path, json) {
                    Ok(()) => " [baseline stored]".to_string(),
                    Err(_) => String::new(),
                }
            }
        }
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` passes the filter positionally; `--bench`
        // and other criterion flags the shim doesn't implement are skipped.
        let mut filter = None;
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            if arg == "--bench" || arg == "--profile-time" || arg == "--save-baseline" {
                args.next();
            } else if !arg.starts_with('-') {
                filter = Some(arg);
            }
        }
        Criterion { filter }
    }
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            samples: 100,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F>(&mut self, id: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if self.matches(id) {
            let mut bencher = Bencher {
                samples: 100,
                result: None,
            };
            routine(&mut bencher);
            report(id, 100, bencher.result);
        }
        self
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }
}

/// Bundle benchmark functions into a callable group, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running each group (requires `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_timing() {
        let mut b = Bencher {
            samples: 3,
            result: None,
        };
        b.iter(|| std::thread::sleep(Duration::from_micros(50)));
        let stats = b.result.unwrap();
        assert!(stats.min >= Duration::from_micros(50));
        assert!(stats.mean >= stats.min);
        assert!(stats.median >= stats.min);
    }

    #[test]
    fn sample_stats_median_and_mad() {
        let mut samples = vec![
            Duration::from_micros(10),
            Duration::from_micros(12),
            Duration::from_micros(11),
            Duration::from_micros(100), // outlier
            Duration::from_micros(9),
        ];
        let stats = SampleStats::from_samples(&mut samples);
        assert_eq!(stats.median, Duration::from_micros(11));
        // Deviations from 11us: [1, 1, 0, 89, 2] -> sorted [0, 1, 1, 2, 89].
        assert_eq!(stats.mad, Duration::from_micros(1));
        assert_eq!(stats.min, Duration::from_micros(9));
        assert!(stats.mean > stats.median, "outlier drags the mean up");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }

    #[test]
    fn baseline_roundtrip_and_delta() {
        // First call stores, second call reports a delta against the stored
        // median. An explicit temp root keeps the repo's results/ tree (and
        // the process working directory) untouched.
        let dir =
            std::env::temp_dir().join(format!("criterion-shim-baseline-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let stored =
            baseline::compare_and_store_in(&dir, "unit/test-bench", Duration::from_micros(100));
        let delta =
            baseline::compare_and_store_in(&dir, "unit/test-bench", Duration::from_micros(150));
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(stored, " [baseline stored]");
        assert!(delta.contains("+50.0%"), "got '{delta}'");
    }
}
