//! Minimal offline stand-in for the `serde` crate.
//!
//! The build container cannot reach crates.io, so this shim supplies the
//! subset the workspace uses: `#[derive(Serialize, Deserialize)]` on plain
//! structs, and enough trait impls on primitives and containers for the
//! bench harness to emit JSON via the sibling `serde_json` shim.
//!
//! Unlike real serde there is no serializer abstraction: [`Serialize`]
//! converts directly to a [`Value`] tree and [`Deserialize`] reads one back.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::collections::HashMap;

/// An owned JSON-like value tree — the single interchange format of the shim.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer (kept exact, not lowered to f64).
    UInt(u64),
    /// Signed integer (kept exact, not lowered to f64).
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a field of an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Convert `self` into the interchange [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from `value`, or `None` on shape mismatch.
    fn from_value(value: &Value) -> Option<Self>;
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Option<Self> {
                match value {
                    Value::UInt(n) => <$t>::try_from(*n).ok(),
                    Value::Int(n) => u64::try_from(*n).ok().and_then(|n| <$t>::try_from(n).ok()),
                    _ => None,
                }
            }
        }
    )*};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Option<Self> {
                match value {
                    Value::Int(n) => <$t>::try_from(*n).ok(),
                    Value::UInt(n) => i64::try_from(*n).ok().and_then(|n| <$t>::try_from(n).ok()),
                    _ => None,
                }
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Option<Self> {
        match value {
            Value::Float(x) => Some(*x),
            Value::UInt(n) => Some(*n as f64),
            Value::Int(n) => Some(*n as f64),
            _ => None,
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Option<Self> {
        f64::from_value(value).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Option<Self> {
        match value {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Option<Self> {
        match value {
            Value::String(s) => Some(s.clone()),
            _ => None,
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Option<Self> {
        match value {
            Value::Null => Some(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Option<Self> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => None,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()), Some(42));
        assert_eq!(i32::from_value(&(-7i32).to_value()), Some(-7));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Some("hi".into())
        );
        assert_eq!(
            Vec::<u32>::from_value(&vec![1u32, 2].to_value()),
            Some(vec![1, 2])
        );
    }

    #[test]
    fn object_lookup() {
        let v = Value::Object(vec![("a".into(), Value::UInt(1))]);
        assert_eq!(v.get("a"), Some(&Value::UInt(1)));
        assert_eq!(v.get("b"), None);
    }
}
