//! Derive macros for the offline `serde` shim.
//!
//! Implemented directly on `proc_macro::TokenStream` (the container has no
//! `syn`/`quote`), so only the shapes the workspace actually derives are
//! supported: non-generic structs with named fields, tuple structs, and
//! fieldless (unit-variant) enums. Anything else is a compile error naming
//! this file.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the item a derive was attached to.
enum Shape {
    /// `struct S { a: T, b: U }` — field names in declaration order.
    Named(Vec<String>),
    /// `struct S(T, U);` — number of unnamed fields.
    Tuple(usize),
    /// `enum E { A, B }` — unit variant names in declaration order.
    UnitEnum(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();

    // Skip outer attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected item name, got {other:?}"),
    };
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive: generic types are not supported (derive on `{name}`)");
    }

    let body = match tokens.next() {
        Some(TokenTree::Group(g)) => g,
        other => panic!("serde shim derive: expected item body for `{name}`, got {other:?}"),
    };

    let shape = match (kind.as_str(), body.delimiter()) {
        ("struct", Delimiter::Brace) => Shape::Named(parse_named_fields(body.stream())),
        ("struct", Delimiter::Parenthesis) => Shape::Tuple(count_tuple_fields(body.stream())),
        ("enum", Delimiter::Brace) => Shape::UnitEnum(parse_unit_variants(&name, body.stream())),
        _ => panic!("serde shim derive: unsupported item shape for `{name}`"),
    };
    Item { name, shape }
}

/// Collect field names from `a: T, b: U, ...`, skipping per-field
/// attributes/visibility and any commas nested inside `<...>` of field types.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip field attributes and visibility.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(field)) = tokens.next() else {
            break;
        };
        fields.push(field.to_string());
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde shim derive: expected `:` after field, got {other:?}"),
        }
        // Consume the type up to the next top-level comma.
        let mut angle_depth = 0i32;
        loop {
            match tokens.peek() {
                None => break,
                Some(TokenTree::Punct(p)) => {
                    let c = p.as_char();
                    if c == '<' {
                        angle_depth += 1;
                    } else if c == '>' {
                        angle_depth -= 1;
                    } else if c == ',' && angle_depth == 0 {
                        tokens.next();
                        break;
                    }
                    tokens.next();
                }
                Some(_) => {
                    tokens.next();
                }
            }
        }
    }
    fields
}

/// Count fields of a tuple struct `(...)` body by top-level commas.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut saw_token = false;
    let mut angle_depth = 0i32;
    for tt in stream {
        saw_token = true;
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => count += 1,
                _ => {}
            }
        }
    }
    if saw_token {
        count + 1
    } else {
        0
    }
}

/// Collect variant names of a fieldless enum; any variant payload is an error.
fn parse_unit_variants(enum_name: &str, stream: TokenStream) -> Vec<String> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip variant attributes.
        while matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            tokens.next();
            tokens.next();
        }
        let Some(TokenTree::Ident(variant)) = tokens.next() else {
            break;
        };
        variants.push(variant.to_string());
        match tokens.next() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(TokenTree::Group(_)) => panic!(
                "serde shim derive: enum `{enum_name}` has a payload-carrying variant; \
                 only unit enums are supported"
            ),
            other => panic!("serde shim derive: unexpected token in enum body: {other:?}"),
        }
    }
    variants
}

/// `#[derive(Serialize)]` — emits a `serde::Serialize` impl producing the
/// shim's `serde::Value` tree (objects for named structs, the inner value for
/// newtypes, arrays for wider tuples, variant-name strings for unit enums).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "fields.push(({f:?}.to_string(), serde::Serialize::to_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "let mut fields: Vec<(String, serde::Value)> = Vec::new();\n\
                 {pushes}\
                 serde::Value::Object(fields)"
            )
        }
        Shape::Tuple(1) => "serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let pushes: String = (0..*n)
                .map(|i| format!("items.push(serde::Serialize::to_value(&self.{i}));\n"))
                .collect();
            format!(
                "let mut items: Vec<serde::Value> = Vec::new();\n\
                 {pushes}\
                 serde::Value::Array(items)"
            )
        }
        Shape::UnitEnum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => serde::Value::String({v:?}.to_string()),\n"))
                .collect();
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .expect("serde shim derive: generated Serialize impl did not parse")
}

/// `#[derive(Deserialize)]` — emits the inverse `serde::Deserialize` impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let field_inits: String = fields
                .iter()
                .map(|f| format!("{f}: serde::Deserialize::from_value(value.get({f:?})?)?,\n"))
                .collect();
            format!("Some({name} {{\n{field_inits}}})")
        }
        Shape::Tuple(1) => format!("Some({name}(serde::Deserialize::from_value(value)?))"),
        Shape::Tuple(n) => {
            let elems: String = (0..*n)
                .map(|i| format!("serde::Deserialize::from_value(items.get({i})?)?,\n"))
                .collect();
            format!(
                "let serde::Value::Array(items) = value else {{ return None; }};\n\
                 Some({name}(\n{elems}))"
            )
        }
        Shape::UnitEnum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{v:?} => Some({name}::{v}),\n"))
                .collect();
            format!(
                "let serde::Value::String(s) = value else {{ return None; }};\n\
                 match s.as_str() {{\n{arms}_ => None,\n}}"
            )
        }
    };
    format!(
        "impl serde::Deserialize for {name} {{\n\
             fn from_value(value: &serde::Value) -> Option<Self> {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .expect("serde shim derive: generated Deserialize impl did not parse")
}
