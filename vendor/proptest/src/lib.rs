//! Minimal offline stand-in for the `proptest` crate.
//!
//! Supports the subset the workspace's property tests use: the `proptest!`
//! macro with an optional `#![proptest_config(...)]` header, `prop_assert!` /
//! `prop_assert_eq!`, `any::<T>()` for integer types, integer-range
//! strategies, tuple strategies, and `proptest::collection::vec`.
//!
//! Each test samples `cases` inputs from an RNG seeded deterministically
//! from the test's name, so failures reproduce run-to-run. On failure a
//! minimal **halving-based shrinker** runs: every strategy can propose
//! smaller candidate inputs (integers halve toward their lower bound,
//! vectors halve their length then shrink elements, tuples shrink one
//! component at a time), and the smallest input that still fails is
//! reported. There are no persisted failure seeds.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// RNG handed to strategies; deterministic per test name.
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// Seed from a test name (stable across runs: FNV-1a of the bytes).
    pub fn deterministic(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x1_0000_0000_01b3);
        }
        TestRng {
            inner: SmallRng::seed_from_u64(hash),
        }
    }

    /// Sample an inclusive integer span via the rand shim.
    pub fn gen_range_u64(&mut self, low: u64, high: u64) -> u64 {
        self.inner.gen_range(low..=high)
    }

    /// Sample an inclusive signed span via the rand shim.
    pub fn gen_range_i64(&mut self, low: i64, high: i64) -> i64 {
        self.inner.gen_range(low..=high)
    }
}

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
    /// Propose strictly "smaller" candidates derived from a failing value,
    /// most aggressive first (halving-based). An empty list stops the
    /// shrinker for this value.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

/// Halving candidates between `low` and a failing value `v` (as i128 to
/// cover every integer type): the lower bound itself, the midpoint, and the
/// immediate predecessor — most aggressive first.
fn halving_candidates(low: i128, v: i128) -> Vec<i128> {
    if v <= low {
        return Vec::new();
    }
    let mut out = vec![low, low + (v - low) / 2, v - 1];
    out.dedup();
    out.retain(|&c| c < v);
    out
}

macro_rules! impl_range_strategy_unsigned {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.gen_range_u64(self.start as u64, self.end as u64 - 1) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                halving_candidates(self.start as i128, *value as i128)
                    .into_iter()
                    .map(|c| c as $t)
                    .collect()
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range_u64(*self.start() as u64, *self.end() as u64) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                halving_candidates(*self.start() as i128, *value as i128)
                    .into_iter()
                    .map(|c| c as $t)
                    .collect()
            }
        }
    )*};
}

macro_rules! impl_range_strategy_signed {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.gen_range_i64(self.start as i64, self.end as i64 - 1) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                halving_candidates(self.start as i128, *value as i128)
                    .into_iter()
                    .map(|c| c as $t)
                    .collect()
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range_i64(*self.start() as i64, *self.end() as i64) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                halving_candidates(*self.start() as i128, *value as i128)
                    .into_iter()
                    .map(|c| c as $t)
                    .collect()
            }
        }
    )*};
}

impl_range_strategy_unsigned!(u8, u16, u32, u64, usize);
impl_range_strategy_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+)
        where
            $($s::Value: Clone,)+
        {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                // One component at a time, the others held fixed.
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = candidate;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )+};
}

impl_tuple_strategy!((A.0), (A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3),);

/// Types with a canonical "anything" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
    /// Smaller candidates for a failing value (see [`Strategy::shrink`]).
    fn shrink_value(_value: &Self) -> Vec<Self> {
        Vec::new()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen_range_u64(0, <$t>::MAX as u64) as $t
            }
            fn shrink_value(value: &Self) -> Vec<Self> {
                halving_candidates(0, *value as i128)
                    .into_iter()
                    .map(|c| c as $t)
                    .collect()
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen_range_u64(0, 1) == 1
    }
    fn shrink_value(value: &Self) -> Vec<Self> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        T::shrink_value(value)
    }
}

/// The "anything goes" strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy producing `Vec`s with lengths drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        min_len: usize,
        max_len: usize,
    }

    /// `vec(element_strategy, len_range)` — real-proptest-shaped constructor.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy {
            element,
            min_len: len.start,
            max_len: len.end - 1,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range_u64(self.min_len as u64, self.max_len as u64) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
        fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
            let mut out = Vec::new();
            // Halve the length first (keeping the prefix), then drop each
            // single element, then shrink elements in place.
            if value.len() > self.min_len {
                let half = (value.len() / 2).max(self.min_len);
                if half < value.len() {
                    out.push(value[..half].to_vec());
                }
                for i in 0..value.len() {
                    let mut next = value.clone();
                    next.remove(i);
                    out.push(next);
                }
            }
            for (i, item) in value.iter().enumerate() {
                for candidate in self.element.shrink(item) {
                    let mut next = value.clone();
                    next[i] = candidate;
                    out.push(next);
                }
            }
            out
        }
    }
}

/// Per-test configuration (only `cases` is honoured).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random inputs per property test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the simulation-heavy
        // property tests fast while still exploring the space.
        ProptestConfig { cases: 64 }
    }
}

/// Drive the shrinker: starting from a failing input, repeatedly move to the
/// first proposed candidate that still fails, until no candidate fails or
/// the step budget is exhausted. `passes` returns `true` when the property
/// HOLDS for a candidate. Returns the minimal failing input and the number
/// of probes spent. Not public API (used by [`proptest!`]).
#[doc(hidden)]
pub fn __shrink_to_minimal<S: Strategy>(
    strategy: &S,
    mut failing: S::Value,
    passes: &mut dyn FnMut(S::Value) -> bool,
) -> (S::Value, u32)
where
    S::Value: Clone,
{
    const MAX_PROBES: u32 = 1024;
    let mut probes = 0;
    'outer: while probes < MAX_PROBES {
        for candidate in strategy.shrink(&failing) {
            probes += 1;
            if !passes(candidate.clone()) {
                failing = candidate;
                continue 'outer;
            }
            if probes >= MAX_PROBES {
                break 'outer;
            }
        }
        break;
    }
    (failing, probes)
}

/// Pin a property closure's argument type to the strategy's value type (so
/// the macro-generated closure type-checks without annotations). Not public
/// API.
#[doc(hidden)]
pub fn __bind_runner<S: Strategy, F: Fn(S::Value)>(_strategy: &S, f: F) -> F {
    f
}

/// Best-effort text of a caught panic payload. Not public API.
#[doc(hidden)]
pub fn __panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run `f` with the global panic hook silenced, restoring the previous hook
/// afterwards: shrink probing panics on purpose many times, and each panic
/// would otherwise print a full backtrace. Not public API.
#[doc(hidden)]
pub fn __with_quiet_panics<R>(f: impl FnOnce() -> R) -> R {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = f();
    std::panic::set_hook(previous);
    result
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Arbitrary, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// `proptest! { ... }` — defines `#[test]` functions that run their body over
/// `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = (<$crate::ProptestConfig as ::core::default::Default>::default());
            $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = ($cfg:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let __strategy = ($($strat,)+);
                let __run = $crate::__bind_runner(&__strategy, |__input| {
                    let ($($arg,)+) = __input;
                    $body
                });
                for __case in 0..__config.cases {
                    let __input = $crate::Strategy::sample(&__strategy, &mut __rng);
                    let __result = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| __run(__input.clone())),
                    );
                    if let Err(__payload) = __result {
                        // Shrink: walk toward the smallest input that still
                        // fails, silencing the per-probe panic output.
                        let (__minimal, __probes) = $crate::__with_quiet_panics(|| {
                            $crate::__shrink_to_minimal(&__strategy, __input, &mut |__candidate| {
                                ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                                    || __run(__candidate),
                                ))
                                .is_ok()
                            })
                        });
                        panic!(
                            "property '{}' failed on case {} ({}); minimal failing input \
                             after {} shrink probe(s): {:?}",
                            stringify!($name),
                            __case,
                            $crate::__panic_message(&*__payload),
                            __probes,
                            __minimal,
                        );
                    }
                }
            }
        )+
    };
}

/// `prop_assert!` — plain `assert!` (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `prop_assert_eq!` — plain `assert_eq!` (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `prop_assert_ne!` — plain `assert_ne!` (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]
        /// Range strategies stay in bounds.
        #[test]
        fn ranges_in_bounds(x in 3u64..10, y in 0usize..5, pair in (1u32..4, 0u8..2)) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y < 5);
            prop_assert!((1..4).contains(&pair.0) && pair.1 < 2);
        }
    }

    proptest! {
        /// Vec strategy respects the length range.
        #[test]
        fn vec_lengths(v in collection::vec(any::<u8>(), 1..9)) {
            prop_assert!(!v.is_empty() && v.len() < 9);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        assert_eq!(a.gen_range_u64(0, 1000), b.gen_range_u64(0, 1000));
    }

    #[test]
    fn shrinker_minimizes_an_integer_to_the_failure_boundary() {
        // Property "x < 50" fails for any x >= 50; from a large failing
        // sample the shrinker must land exactly on 50.
        let strategy = 0u64..10_000;
        let (minimal, probes) =
            crate::__shrink_to_minimal(&strategy, 9_876, &mut |candidate| candidate < 50);
        assert_eq!(minimal, 50);
        assert!(probes > 0);
    }

    #[test]
    fn shrinker_minimizes_vec_length_and_elements() {
        // Property "no element >= 10" — minimal counterexample is one
        // element of exactly 10.
        let strategy = collection::vec(0u32..1000, 1..50);
        let failing = vec![3, 999, 4, 17, 800];
        let (minimal, _) = crate::__shrink_to_minimal(&strategy, failing, &mut |candidate| {
            candidate.iter().all(|&x| x < 10)
        });
        assert_eq!(minimal, vec![10]);
    }

    #[test]
    fn shrinker_minimizes_tuple_components_independently() {
        // Fails when a + b >= 30.
        let strategy = (0u64..100, 0u64..100);
        let (minimal, _) =
            crate::__shrink_to_minimal(&strategy, (80, 90), &mut |(a, b)| a + b < 30);
        assert_eq!(minimal.0 + minimal.1, 30, "landed on the boundary");
    }

    #[test]
    fn failing_property_reports_a_minimal_input() {
        // A deliberately failing property run through the full macro path:
        // the panic message must carry the shrunk (minimal) input, not the
        // original random sample.
        crate::proptest! {
            #![proptest_config(crate::ProptestConfig::with_cases(20))]
            fn sometimes_fails(x in 0u64..1_000_000) {
                crate::prop_assert!(x < 3);
            }
        }
        let result = std::panic::catch_unwind(sometimes_fails);
        let message = crate::__panic_message(&*result.unwrap_err());
        assert!(
            message.contains("minimal failing input"),
            "unexpected message: {message}"
        );
        assert!(message.contains("(3,)"), "not minimized: {message}");
    }
}
