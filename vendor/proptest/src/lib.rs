//! Minimal offline stand-in for the `proptest` crate.
//!
//! Supports the subset the workspace's property tests use: the `proptest!`
//! macro with an optional `#![proptest_config(...)]` header, `prop_assert!` /
//! `prop_assert_eq!`, `any::<T>()` for integer types, integer-range
//! strategies, tuple strategies, and `proptest::collection::vec`.
//!
//! Unlike real proptest there is **no shrinking** and no persisted failure
//! seeds: each test samples `cases` inputs from an RNG seeded
//! deterministically from the test's name, so failures reproduce run-to-run.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// RNG handed to strategies; deterministic per test name.
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// Seed from a test name (stable across runs: FNV-1a of the bytes).
    pub fn deterministic(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x1_0000_0000_01b3);
        }
        TestRng {
            inner: SmallRng::seed_from_u64(hash),
        }
    }

    /// Sample an inclusive integer span via the rand shim.
    pub fn gen_range_u64(&mut self, low: u64, high: u64) -> u64 {
        self.inner.gen_range(low..=high)
    }

    /// Sample an inclusive signed span via the rand shim.
    pub fn gen_range_i64(&mut self, low: i64, high: i64) -> i64 {
        self.inner.gen_range(low..=high)
    }
}

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy_unsigned {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.gen_range_u64(self.start as u64, self.end as u64 - 1) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range_u64(*self.start() as u64, *self.end() as u64) as $t
            }
        }
    )*};
}

macro_rules! impl_range_strategy_signed {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.gen_range_i64(self.start as i64, self.end as i64 - 1) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range_i64(*self.start() as i64, *self.end() as i64) as $t
            }
        }
    )*};
}

impl_range_strategy_unsigned!(u8, u16, u32, u64, usize);
impl_range_strategy_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3),);

/// Types with a canonical "anything" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen_range_u64(0, <$t>::MAX as u64) as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen_range_u64(0, 1) == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The "anything goes" strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy producing `Vec`s with lengths drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        min_len: usize,
        max_len: usize,
    }

    /// `vec(element_strategy, len_range)` — real-proptest-shaped constructor.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy {
            element,
            min_len: len.start,
            max_len: len.end - 1,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range_u64(self.min_len as u64, self.max_len as u64) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Per-test configuration (only `cases` is honoured).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random inputs per property test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the simulation-heavy
        // property tests fast while still exploring the space.
        ProptestConfig { cases: 64 }
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Arbitrary, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// `proptest! { ... }` — defines `#[test]` functions that run their body over
/// `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = (<$crate::ProptestConfig as ::core::default::Default>::default());
            $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = ($cfg:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __case in 0..__config.cases {
                    let ($($arg,)+) = (
                        $($crate::Strategy::sample(&($strat), &mut __rng),)+
                    );
                    $body
                }
            }
        )+
    };
}

/// `prop_assert!` — plain `assert!` (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `prop_assert_eq!` — plain `assert_eq!` (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `prop_assert_ne!` — plain `assert_ne!` (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]
        /// Range strategies stay in bounds.
        #[test]
        fn ranges_in_bounds(x in 3u64..10, y in 0usize..5, pair in (1u32..4, 0u8..2)) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y < 5);
            prop_assert!((1..4).contains(&pair.0) && pair.1 < 2);
        }
    }

    proptest! {
        /// Vec strategy respects the length range.
        #[test]
        fn vec_lengths(v in collection::vec(any::<u8>(), 1..9)) {
            prop_assert!(!v.is_empty() && v.len() < 9);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        assert_eq!(a.gen_range_u64(0, 1000), b.gen_range_u64(0, 1000));
    }
}
