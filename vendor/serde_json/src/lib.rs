//! Minimal offline stand-in for `serde_json`: serializes the shim
//! [`serde::Value`] tree to JSON text. Only the output half is implemented —
//! the workspace never parses JSON, it only writes bench reports.

use std::fmt;

pub use serde::Value;

/// Error type for the serializer (the shim serializer is infallible in
/// practice, but the signature mirrors `serde_json`).
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize `value` as compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize `value` as human-readable, two-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // Match serde_json: whole floats keep a trailing `.0`.
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    out.push_str(&format!("{x:.1}"));
                } else {
                    out.push_str(&x.to_string());
                }
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => write_seq(
            out,
            items.iter(),
            items.len(),
            indent,
            depth,
            ('[', ']'),
            |out, v, d| write_value(out, v, indent, d),
        ),
        Value::Object(fields) => write_seq(
            out,
            fields.iter(),
            fields.len(),
            indent,
            depth,
            ('{', '}'),
            |out, (k, v), d| {
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, d);
            },
        ),
    }
}

fn write_seq<I: Iterator>(
    out: &mut String,
    items: I,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    brackets: (char, char),
    mut write_item: impl FnMut(&mut String, I::Item, usize),
) {
    out.push(brackets.0);
    if len == 0 {
        out.push(brackets.1);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (depth + 1)));
        }
        write_item(out, item, depth + 1);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(step * depth));
    }
    out.push(brackets.1);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_objects() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("BIP/Myrinet".into())),
            ("latency_us".into(), Value::Float(8.0)),
            (
                "sizes".into(),
                Value::Array(vec![Value::UInt(64), Value::UInt(4096)]),
            ),
        ]);
        assert_eq!(
            to_string(&Shim(v.clone())).unwrap(),
            r#"{"name":"BIP/Myrinet","latency_us":8.0,"sizes":[64,4096]}"#
        );
        let pretty = to_string_pretty(&Shim(v)).unwrap();
        assert!(pretty.contains("\n  \"name\": \"BIP/Myrinet\""));
        assert!(pretty.ends_with('}'));
    }

    #[test]
    fn strings_are_escaped() {
        let mut out = String::new();
        write_string(&mut out, "a\"b\\c\nd");
        assert_eq!(out, r#""a\"b\\c\nd""#);
    }

    /// Wrap a raw Value so the public `to_string` API can be exercised.
    struct Shim(Value);
    impl serde::Serialize for Shim {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }
}
