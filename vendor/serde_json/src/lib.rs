//! Minimal offline stand-in for `serde_json`: serializes the shim
//! [`serde::Value`] tree to JSON text and parses JSON text back into a
//! [`serde::Value`] tree (used by the bench regression gate, which reads
//! `BENCH_seed.json` to compare fresh measurements against the recorded
//! baseline).

use std::fmt;

pub use serde::Value;

/// Error type for the serializer (the shim serializer is infallible in
/// practice, but the signature mirrors `serde_json`).
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize `value` as compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize `value` as human-readable, two-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // Match serde_json: whole floats keep a trailing `.0`.
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    out.push_str(&format!("{x:.1}"));
                } else {
                    // `{:?}` is the shortest round-trippable form and uses
                    // exponent notation for very large/small magnitudes
                    // (e.g. `1e16`, `2.5e-9`), which the parser reads back
                    // as a float — plain `{}` would print `1e16` as a bare
                    // integer string and lose the value's float-ness.
                    out.push_str(&format!("{x:?}"));
                }
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => write_seq(
            out,
            items.iter(),
            items.len(),
            indent,
            depth,
            ('[', ']'),
            |out, v, d| write_value(out, v, indent, d),
        ),
        Value::Object(fields) => write_seq(
            out,
            fields.iter(),
            fields.len(),
            indent,
            depth,
            ('{', '}'),
            |out, (k, v), d| {
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, d);
            },
        ),
    }
}

fn write_seq<I: Iterator>(
    out: &mut String,
    items: I,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    brackets: (char, char),
    mut write_item: impl FnMut(&mut String, I::Item, usize),
) {
    out.push(brackets.0);
    if len == 0 {
        out.push(brackets.1);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (depth + 1)));
        }
        write_item(out, item, depth + 1);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(step * depth));
    }
    out.push(brackets.1);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Parse JSON text into a [`Value`] tree.
pub fn from_str_value(input: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!(
            "trailing characters at byte {} of JSON input",
            parser.pos
        )));
    }
    Ok(value)
}

/// Parse JSON text into any [`serde::Deserialize`] type.
pub fn from_str<T: serde::Deserialize>(input: &str) -> Result<T, Error> {
    let value = from_str_value(input)?;
    T::from_value(&value).ok_or_else(|| Error("JSON shape does not match target type".into()))
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error(format!("unexpected character at byte {}", self.pos))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            out.push(self.unicode_escape()?);
                            continue;
                        }
                        _ => return Err(Error("unknown escape".into())),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Read four hex digits (cursor on the first digit; leaves it after the
    /// last).
    fn hex4(&mut self) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error("truncated \\u escape".into()))?;
        let code = u32::from_str_radix(
            std::str::from_utf8(hex).map_err(|_| Error("invalid \\u escape".into()))?,
            16,
        )
        .map_err(|_| Error("invalid \\u escape".into()))?;
        self.pos += 4;
        Ok(code)
    }

    /// Decode a `\uXXXX` escape (cursor just past the `u`), including UTF-16
    /// surrogate pairs: characters outside the basic multilingual plane are
    /// encoded in JSON as two consecutive escapes (`\uD834\uDD1E` is one
    /// G-clef code point).
    fn unicode_escape(&mut self) -> Result<char, Error> {
        let code = self.hex4()?;
        if (0xDC00..=0xDFFF).contains(&code) {
            return Err(Error("unpaired low surrogate in \\u escape".into()));
        }
        if (0xD800..=0xDBFF).contains(&code) {
            if self.bytes.get(self.pos) != Some(&b'\\')
                || self.bytes.get(self.pos + 1) != Some(&b'u')
            {
                return Err(Error("unpaired high surrogate in \\u escape".into()));
            }
            self.pos += 2;
            let low = self.hex4()?;
            if !(0xDC00..=0xDFFF).contains(&low) {
                return Err(Error("invalid low surrogate in \\u escape".into()));
            }
            let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            return char::from_u32(combined).ok_or_else(|| Error("invalid \\u code point".into()));
        }
        char::from_u32(code).ok_or_else(|| Error("invalid \\u code point".into()))
    }

    fn number(&mut self) -> Result<Value, Error> {
        // Proper JSON number grammar: `-? int frac? exp?` with `int` either
        // `0` or a non-zero-led digit run, `frac` requiring a digit after the
        // point and `exp` requiring a digit after `e[+-]?`. The previous
        // scanner swallowed `.`/`e`/`+`/`-` anywhere in the token and leaned
        // on `f64::from_str` to reject the garbage, which mis-parsed forms
        // like `1e` (error where serde_json errors too — fine) but also
        // mispositioned the cursor on inputs like `1e+` inside arrays.
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(Error(format!("invalid number at byte {}", self.pos))),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(Error(format!("digit expected at byte {}", self.pos)));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(Error(format!(
                    "exponent digit expected at byte {}",
                    self.pos
                )));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error(format!("invalid number '{text}'")))
        } else if text.starts_with('-') {
            // Integers beyond i64/u64 range degrade to f64, as serde_json's
            // default (non-arbitrary-precision) parser does.
            text.parse::<i64>().map(Value::Int).or_else(|_| {
                text.parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| Error(format!("invalid number '{text}'")))
            })
        } else {
            text.parse::<u64>().map(Value::UInt).or_else(|_| {
                text.parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| Error(format!("invalid number '{text}'")))
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_a_report_shaped_document() {
        let text = r#"{
  "note": "seed baseline",
  "rows": [
    {"network": "BIP/Myrinet", "total_us": 191.794, "count": 4, "ok": true},
    {"network": "SISCI\n", "total_us": -1.5e2, "missing": null}
  ]
}"#;
        let v = from_str_value(text).unwrap();
        let rows = match v.get("rows") {
            Some(Value::Array(rows)) => rows,
            other => panic!("bad rows: {other:?}"),
        };
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[0].get("total_us"),
            Some(&Value::Float(191.794)),
            "floats parse exactly"
        );
        assert_eq!(rows[0].get("count"), Some(&Value::UInt(4)));
        assert_eq!(rows[0].get("ok"), Some(&Value::Bool(true)));
        assert_eq!(rows[1].get("total_us"), Some(&Value::Float(-150.0)));
        assert_eq!(rows[1].get("missing"), Some(&Value::Null));
        assert_eq!(
            rows[1].get("network"),
            Some(&Value::String("SISCI\n".into()))
        );
    }

    #[test]
    fn serializer_output_parses_back() {
        let v = Value::Object(vec![
            (
                "a".into(),
                Value::Array(vec![Value::UInt(1), Value::Int(-2)]),
            ),
            ("b".into(), Value::String("x\"y\\z".into())),
            ("c".into(), Value::Float(2.5)),
        ]);
        let text = to_string_pretty(&Shim(v.clone())).unwrap();
        let reparsed = from_str_value(&text).unwrap();
        // Ints may widen (UInt vs Int) but these exact variants round-trip.
        assert_eq!(reparsed, v);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str_value("{\"a\": }").is_err());
        assert!(from_str_value("[1, 2").is_err());
        assert!(from_str_value("42 trailing").is_err());
    }

    #[test]
    fn all_json_escapes_parse() {
        // \b and \f are legal JSON escapes the parser used to reject.
        let v = from_str_value(r#""a\bb\fc\/d""#).unwrap();
        assert_eq!(v, Value::String("a\u{0008}b\u{000C}c/d".into()));
        // Surrogate pairs decode to the astral-plane character.
        let v = from_str_value(r#""G-clef: \ud834\udd1e""#).unwrap();
        assert_eq!(v, Value::String("G-clef: \u{1D11E}".into()));
        // Unpaired or malformed surrogates are errors, not garbage.
        assert!(from_str_value(r#""\ud834""#).is_err());
        assert!(from_str_value(r#""\ud834 ""#).is_err());
        assert!(from_str_value(r#""\udd1e""#).is_err());
    }

    #[test]
    fn exponent_form_numbers_parse() {
        assert_eq!(from_str_value("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(from_str_value("1E+3").unwrap(), Value::Float(1000.0));
        assert_eq!(from_str_value("-2.5e-2").unwrap(), Value::Float(-0.025));
        assert_eq!(from_str_value("1e16").unwrap(), Value::Float(1e16));
        // Malformed exponents and fractions are rejected with the cursor
        // inside the token (not silently swallowed into neighbours).
        assert!(from_str_value("1e").is_err());
        assert!(from_str_value("1e+").is_err());
        assert!(from_str_value("1.").is_err());
        assert!(from_str_value("[1e+,2]").is_err());
        // Integers beyond u64 degrade to floats rather than erroring.
        assert_eq!(
            from_str_value("100000000000000000000").unwrap(),
            Value::Float(1e20)
        );
    }

    #[test]
    fn write_json_output_roundtrips_through_the_parser() {
        // The exact document shape write_json produces: nested objects,
        // arrays, exponent-range floats, whole floats, escapes.
        let v = Value::Object(vec![
            (
                "label".into(),
                Value::String("tab\there \u{0008}\u{000C} and \u{1D11E}".into()),
            ),
            (
                "rows".into(),
                Value::Array(vec![
                    Value::Object(vec![
                        ("whole".into(), Value::Float(192.0)),
                        ("huge".into(), Value::Float(3.2e18)),
                        ("tiny".into(), Value::Float(4.5e-9)),
                        ("count".into(), Value::UInt(12)),
                        ("delta".into(), Value::Int(-3)),
                    ]),
                    Value::Null,
                    Value::Bool(true),
                ]),
            ),
        ]);
        for text in [
            to_string(&Shim(v.clone())).unwrap(),
            to_string_pretty(&Shim(v.clone())).unwrap(),
        ] {
            let reparsed = from_str_value(&text).unwrap();
            assert_eq!(reparsed, v, "document changed across a round-trip: {text}");
        }
    }

    #[test]
    fn compact_and_pretty_objects() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("BIP/Myrinet".into())),
            ("latency_us".into(), Value::Float(8.0)),
            (
                "sizes".into(),
                Value::Array(vec![Value::UInt(64), Value::UInt(4096)]),
            ),
        ]);
        assert_eq!(
            to_string(&Shim(v.clone())).unwrap(),
            r#"{"name":"BIP/Myrinet","latency_us":8.0,"sizes":[64,4096]}"#
        );
        let pretty = to_string_pretty(&Shim(v)).unwrap();
        assert!(pretty.contains("\n  \"name\": \"BIP/Myrinet\""));
        assert!(pretty.ends_with('}'));
    }

    #[test]
    fn strings_are_escaped() {
        let mut out = String::new();
        write_string(&mut out, "a\"b\\c\nd");
        assert_eq!(out, r#""a\"b\\c\nd""#);
    }

    /// Wrap a raw Value so the public `to_string` API can be exercised.
    struct Shim(Value);
    impl serde::Serialize for Shim {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }
}
