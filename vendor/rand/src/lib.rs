//! Minimal offline stand-in for the `rand` crate.
//!
//! Provides the subset the workloads use — `rand::rngs::SmallRng`,
//! `SeedableRng::seed_from_u64` and `Rng::gen_range` over integer ranges —
//! with a deterministic xoshiro256** generator (the same family real
//! `SmallRng` uses on 64-bit targets, though the streams differ, so seeds
//! are reproducible only within this shim).

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed (expanded internally via splitmix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Integer types [`Rng::gen_range`] can sample.
pub trait SampleUniform: Copy {
    /// Sample uniformly from `[low, high]` (both inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Range shapes accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one sample from `self` using `rng`.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                // Width of [low, high] as u128 to avoid overflow at type bounds.
                let span = (high as i128 - low as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full 64-bit domain: every draw is uniform already.
                    return (low as i128).wrapping_add(rng.next_u64() as i128) as $t;
                }
                let span = span as u64;
                // Debiased rejection sampling: accept draws below the largest
                // multiple of `span` that fits in u64.
                let zone = u64::MAX - (u64::MAX - span + 1) % span;
                loop {
                    let draw = rng.next_u64();
                    if draw <= zone {
                        return (low as i128 + (draw % span) as i128) as $t;
                    }
                }
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: SampleUniform + PartialOrd + Bounded> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_inclusive(rng, self.start, self.end.prev())
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Helper for exclusive upper bounds: predecessor of a value.
pub trait Bounded: Copy {
    /// The value immediately below `self`.
    fn prev(self) -> Self;
}

macro_rules! impl_bounded {
    ($($t:ty),*) => {$(
        impl Bounded for $t {
            fn prev(self) -> Self { self - 1 }
        }
    )*};
}

impl_bounded!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing random-value methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// A uniformly random `bool`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic small RNGs.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256** — fast, seedable, good statistical quality.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 of any seed
            // cannot produce it, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u32), b.gen_range(0..1000u32));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(1..=100u32);
            assert!((1..=100).contains(&x));
            let y = rng.gen_range(0..17usize);
            assert!(y < 17);
            let z = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0..u64::MAX) == b.gen_range(0..u64::MAX))
            .count();
        assert!(same < 4);
    }
}
