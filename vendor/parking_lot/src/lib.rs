//! Offline stand-in for the `parking_lot` crate — now a real word-sized
//! parking-lot implementation rather than a wrapper around `std::sync`.
//!
//! The build container has no access to crates.io, so this shim provides the
//! subset of the `parking_lot` API the workspace uses — `Mutex`, `RwLock` and
//! `Condvar` with non-poisoning guards. Like the real crate, every lock is
//! one word of state with an inline fast path (a single compare-and-swap to
//! acquire or release an uncontended lock) and a spin-then-park slow path:
//! blocked threads wait in a global *parking table* keyed by the lock's
//! address, so the locks themselves carry no queues, no `std::sync` mutexes
//! and no heap allocations.
//!
//! Semantics match `parking_lot` where the workspace depends on them:
//! `lock()` returns the guard directly (there is no poisoning — a panic while
//! a guard is held simply unlocks on unwind), `Condvar::wait` borrows the
//! guard instead of consuming it, and locks are *unfair*: a released lock may
//! be barged by a passing thread before a parked waiter gets it. All blocking
//! primitives in the workspace re-check their condition in a loop, so
//! barging and spurious wake-ups are harmless.

use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::fmt;
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::{self, Thread};

// ---------------------------------------------------------------------------
// Global parking table
// ---------------------------------------------------------------------------

/// Number of hash buckets in the global parking table. Collisions are
/// harmless (waiters are matched by exact key); the count only bounds
/// cross-lock contention on the bucket locks, which are touched on the slow
/// path only.
const BUCKET_COUNT: usize = 64;

/// Iterations of `spin_loop` a blocked thread burns before parking. Handing
/// a lock between two running threads usually completes well within this
/// window, so the common case never enters the kernel. On a single-CPU host
/// the holder cannot make progress while we spin, so park immediately.
fn spin_limit() -> u32 {
    static LIMIT: std::sync::OnceLock<u32> = std::sync::OnceLock::new();
    *LIMIT.get_or_init(|| match thread::available_parallelism() {
        Ok(n) if n.get() > 1 => 64,
        _ => 0,
    })
}

/// One blocked thread, parked under `key` (the address of the lock it waits
/// on). `signaled` is the wake token: set (then `unpark`ed) by the waker,
/// consumed by the waiter's park loop.
struct Waiter {
    key: usize,
    parker: Arc<Parker>,
}

struct Parker {
    signaled: AtomicBool,
    thread: Thread,
}

/// A bucket is a plain OS mutex around a FIFO of waiters. This is the *only*
/// place the shim touches `std::sync`, and only on the slow path.
struct Bucket {
    queue: std::sync::Mutex<VecDeque<Waiter>>,
}

impl Bucket {
    const fn new() -> Self {
        Bucket {
            queue: std::sync::Mutex::new(VecDeque::new()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<Waiter>> {
        match self.queue.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

static BUCKETS: [Bucket; BUCKET_COUNT] = [const { Bucket::new() }; BUCKET_COUNT];

fn bucket_for(key: usize) -> &'static Bucket {
    // Fibonacci hashing on the address; locks are word-aligned so the low
    // bits carry no entropy.
    &BUCKETS[(key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 48) % BUCKET_COUNT]
}

thread_local! {
    static PARKER: Arc<Parker> = Arc::new(Parker {
        signaled: AtomicBool::new(false),
        thread: thread::current(),
    });
}

/// Park the calling thread under `key` until a matching `unpark_*` call.
/// `validate` runs under the bucket lock just before enqueueing: if it
/// returns false the thread does not park and the call returns immediately
/// (the canonical lost-wakeup guard — the waker changes the lock word
/// *before* touching the bucket, so a waiter whose validate still sees
/// "blocked" is guaranteed to be enqueued before any wake scan).
fn park(key: usize, validate: impl FnOnce() -> bool) {
    PARKER.with(|parker| {
        parker.signaled.store(false, Ordering::Relaxed);
        {
            let mut queue = bucket_for(key).lock();
            if !validate() {
                return;
            }
            queue.push_back(Waiter {
                key,
                parker: Arc::clone(parker),
            });
        }
        while !parker.signaled.load(Ordering::Acquire) {
            thread::park();
        }
    });
}

fn wake(waiter: Waiter) {
    waiter.parker.signaled.store(true, Ordering::Release);
    waiter.parker.thread.unpark();
}

/// Wake the oldest thread parked under `key`. Returns true if one was found.
/// `requeue_hint` runs under the bucket lock and receives whether more
/// waiters remain for this key, letting lock release code publish the
/// have-more-waiters bit atomically with the dequeue.
fn unpark_one(key: usize, requeue_hint: impl FnOnce(bool)) -> bool {
    let woken = {
        let mut queue = bucket_for(key).lock();
        let woken = queue
            .iter()
            .position(|w| w.key == key)
            .map(|i| queue.remove(i).expect("position in range"));
        requeue_hint(queue.iter().any(|w| w.key == key));
        woken
    };
    match woken {
        Some(waiter) => {
            wake(waiter);
            true
        }
        None => false,
    }
}

/// Wake every thread parked under `key`. Returns how many were woken.
fn unpark_all(key: usize) -> usize {
    let woken: Vec<Waiter> = {
        let mut queue = bucket_for(key).lock();
        let mut woken = Vec::new();
        let mut i = 0;
        while i < queue.len() {
            if queue[i].key == key {
                woken.push(queue.remove(i).expect("index in range"));
            } else {
                i += 1;
            }
        }
        woken
    };
    let count = woken.len();
    for waiter in woken {
        wake(waiter);
    }
    count
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

const LOCKED: usize = 1;
const PARKED: usize = 2;

/// A mutual-exclusion primitive; one word of state, no poisoning.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    state: AtomicUsize,
    data: UnsafeCell<T>,
}

unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

/// RAII guard returned by [`Mutex::lock`]. Not `Send`: it must be dropped on
/// the locking thread (matching `parking_lot`).
pub struct MutexGuard<'a, T: ?Sized> {
    mutex: &'a Mutex<T>,
    _not_send: PhantomData<*const ()>,
}

unsafe impl<T: ?Sized + Sync> Sync for MutexGuard<'_, T> {}

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            state: AtomicUsize::new(0),
            data: UnsafeCell::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        if self
            .state
            .compare_exchange_weak(0, LOCKED, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            self.lock_slow();
        }
        MutexGuard {
            mutex: self,
            _not_send: PhantomData,
        }
    }

    #[cold]
    fn lock_slow(&self) {
        let key = self.key();
        let mut spins = 0u32;
        loop {
            let state = self.state.load(Ordering::Relaxed);
            if state & LOCKED == 0 {
                if self
                    .state
                    .compare_exchange_weak(
                        state,
                        state | LOCKED,
                        Ordering::Acquire,
                        Ordering::Relaxed,
                    )
                    .is_ok()
                {
                    return;
                }
                continue;
            }
            if state & PARKED == 0 {
                if spins < spin_limit() {
                    spins += 1;
                    std::hint::spin_loop();
                    continue;
                }
                if self
                    .state
                    .compare_exchange_weak(
                        state,
                        state | PARKED,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    )
                    .is_err()
                {
                    continue;
                }
            }
            park(key, || {
                self.state.load(Ordering::Relaxed) == LOCKED | PARKED
            });
            spins = 0;
        }
    }

    /// Attempt to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let mut state = self.state.load(Ordering::Relaxed);
        loop {
            if state & LOCKED != 0 {
                return None;
            }
            match self.state.compare_exchange_weak(
                state,
                state | LOCKED,
                Ordering::Acquire,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    return Some(MutexGuard {
                        mutex: self,
                        _not_send: PhantomData,
                    })
                }
                Err(s) => state = s,
            }
        }
    }

    /// Mutably borrow the inner value (no locking needed: `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }

    fn key(&self) -> usize {
        self as *const _ as *const () as usize
    }

    /// Release the lock without a guard (used by guard Drop and Condvar).
    fn raw_unlock(&self) {
        if self
            .state
            .compare_exchange(LOCKED, 0, Ordering::Release, Ordering::Relaxed)
            .is_ok()
        {
            return;
        }
        self.unlock_slow();
    }

    #[cold]
    fn unlock_slow(&self) {
        // A parked bit is set: hand the have-more-waiters bit over to the
        // state word under the bucket lock, then wake the oldest waiter. The
        // woken thread (and any barging passer-by) re-contends normally.
        let key = self.key();
        unpark_one(key, |more| {
            self.state
                .store(if more { PARKED } else { 0 }, Ordering::Release);
        });
    }

    /// Re-acquire after a Condvar wait (same as lock, kept separate so the
    /// guard type needn't be reconstructed).
    fn raw_lock(&self) {
        if self
            .state
            .compare_exchange_weak(0, LOCKED, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            self.lock_slow();
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // Safety: the guard proves the calling thread holds the lock.
        unsafe { &*self.mutex.data.get() }
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // Safety: the guard proves the calling thread holds the lock.
        unsafe { &mut *self.mutex.data.get() }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.mutex.raw_unlock();
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

// RwLock word layout: bit 0 = writer holds the lock, bit 1 = threads are
// parked (readers and writers share one parking key; releases wake everyone
// and the woken threads re-contend), bits 2.. = reader count.
const WRITER: usize = 1;
const RW_PARKED: usize = 2;
const READER_UNIT: usize = 4;

/// A reader-writer lock; one word of state, no poisoning.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    state: AtomicUsize,
    data: UnsafeCell<T>,
}

unsafe impl<T: ?Sized + Send> Send for RwLock<T> {}
unsafe impl<T: ?Sized + Send + Sync> Sync for RwLock<T> {}

/// RAII shared-read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    _not_send: PhantomData<*const ()>,
}

/// RAII exclusive-write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    _not_send: PhantomData<*const ()>,
}

unsafe impl<T: ?Sized + Sync> Sync for RwLockReadGuard<'_, T> {}
unsafe impl<T: ?Sized + Sync> Sync for RwLockWriteGuard<'_, T> {}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            state: AtomicUsize::new(0),
            data: UnsafeCell::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    fn key(&self) -> usize {
        self as *const _ as *const () as usize
    }

    /// Acquire shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let state = self.state.load(Ordering::Relaxed);
        if state & (WRITER | RW_PARKED) != 0
            || self
                .state
                .compare_exchange_weak(
                    state,
                    state + READER_UNIT,
                    Ordering::Acquire,
                    Ordering::Relaxed,
                )
                .is_err()
        {
            self.read_slow();
        }
        RwLockReadGuard {
            lock: self,
            _not_send: PhantomData,
        }
    }

    #[cold]
    fn read_slow(&self) {
        let mut spins = 0u32;
        loop {
            let state = self.state.load(Ordering::Relaxed);
            // Readers defer to parked threads (a parked bit implies a writer
            // is waiting) to avoid starving writers under a reader stream.
            if state & (WRITER | RW_PARKED) == 0 {
                if self
                    .state
                    .compare_exchange_weak(
                        state,
                        state + READER_UNIT,
                        Ordering::Acquire,
                        Ordering::Relaxed,
                    )
                    .is_ok()
                {
                    return;
                }
                continue;
            }
            if spins < spin_limit() {
                spins += 1;
                std::hint::spin_loop();
                continue;
            }
            if state & RW_PARKED == 0
                && self
                    .state
                    .compare_exchange_weak(
                        state,
                        state | RW_PARKED,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    )
                    .is_err()
            {
                continue;
            }
            // Park while the parked bit is set: readers defer to parked
            // threads whether or not the lock is momentarily free, and a set
            // parked bit guarantees a wake-all is coming (the releaser
            // clears the bit and then scans this bucket, and the bucket lock
            // orders our enqueue against that scan).
            park(self.key(), || {
                self.state.load(Ordering::Relaxed) & RW_PARKED != 0
            });
            spins = 0;
        }
    }

    /// Acquire exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        if self
            .state
            .compare_exchange_weak(0, WRITER, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            self.write_slow();
        }
        RwLockWriteGuard {
            lock: self,
            _not_send: PhantomData,
        }
    }

    #[cold]
    fn write_slow(&self) {
        let mut spins = 0u32;
        loop {
            let state = self.state.load(Ordering::Relaxed);
            // A writer may take the lock whenever no writer and no readers
            // hold it, preserving (and inheriting) the parked bit.
            if state & WRITER == 0 && state / READER_UNIT == 0 {
                if self
                    .state
                    .compare_exchange_weak(
                        state,
                        state | WRITER,
                        Ordering::Acquire,
                        Ordering::Relaxed,
                    )
                    .is_ok()
                {
                    return;
                }
                continue;
            }
            if spins < spin_limit() {
                spins += 1;
                std::hint::spin_loop();
                continue;
            }
            if state & RW_PARKED == 0
                && self
                    .state
                    .compare_exchange_weak(
                        state,
                        state | RW_PARKED,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    )
                    .is_err()
            {
                continue;
            }
            park(self.key(), || {
                let s = self.state.load(Ordering::Relaxed);
                s & RW_PARKED != 0 && (s & WRITER != 0 || s / READER_UNIT != 0)
            });
            spins = 0;
        }
    }

    /// Mutably borrow the inner value (no locking needed: `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }

    fn read_unlock(&self) {
        let prev = self.state.fetch_sub(READER_UNIT, Ordering::Release);
        if prev == READER_UNIT | RW_PARKED {
            // Last reader out with threads parked: clear the bit and wake
            // everyone; readers and waiting writers re-contend. If the CAS
            // fails someone else acquired meanwhile and their release wakes.
            if self
                .state
                .compare_exchange(RW_PARKED, 0, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                unpark_all(self.key());
            }
        }
    }

    fn write_unlock(&self) {
        let prev = self.state.swap(0, Ordering::Release);
        if prev & RW_PARKED != 0 {
            unpark_all(self.key());
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // Safety: the guard proves shared read access is held.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // Safety: the guard proves exclusive access is held.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // Safety: the guard proves exclusive access is held.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.read_unlock();
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.write_unlock();
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// A condition variable whose `wait` borrows the guard (parking_lot style).
/// Waiters park in the global table under the condvar's address; because a
/// waiter enqueues itself *before* releasing the mutex, a notify performed
/// after the condition was made true (under that mutex) is guaranteed to see
/// the waiter — the classic lost-wakeup guarantee.
#[derive(Default)]
pub struct Condvar {
    // The address is the parking key; the struct needs a stable, non-ZST
    // footprint so distinct condvars have distinct keys.
    _state: AtomicUsize,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            _state: AtomicUsize::new(0),
        }
    }

    fn key(&self) -> usize {
        self as *const _ as *const () as usize
    }

    /// Block until notified, releasing `guard`'s mutex while blocked.
    /// Spurious wake-ups are possible; callers re-check in a loop.
    pub fn wait<T: ?Sized>(&self, guard: &mut MutexGuard<'_, T>) {
        let key = self.key();
        let mutex = guard.mutex;
        PARKER.with(|parker| {
            parker.signaled.store(false, Ordering::Relaxed);
            {
                let mut queue = bucket_for(key).lock();
                queue.push_back(Waiter {
                    key,
                    parker: Arc::clone(parker),
                });
            }
            mutex.raw_unlock();
            while !parker.signaled.load(Ordering::Acquire) {
                thread::park();
            }
        });
        mutex.raw_lock();
    }

    /// Block until `condition` returns false, releasing the mutex while
    /// blocked.
    pub fn wait_while<T: ?Sized, F: FnMut(&mut T) -> bool>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        mut condition: F,
    ) {
        while condition(&mut *guard) {
            self.wait(guard);
        }
    }

    /// Wake one blocked waiter. Returns true if a waiter was woken.
    pub fn notify_one(&self) -> bool {
        unpark_one(self.key(), |_| {})
    }

    /// Wake every blocked waiter. Returns the number woken.
    pub fn notify_all(&self) -> usize {
        unpark_all(self.key())
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::time::Duration;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn mutex_try_lock() {
        let m = Mutex::new(5u32);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(*m.try_lock().unwrap(), 5);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn rwlock_allows_concurrent_readers() {
        let l = RwLock::new(0u32);
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(*r1 + *r2, 0);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut started = lock.lock();
            while !*started {
                cvar.wait(&mut started);
            }
        });
        // Give the waiter a chance to actually park (not required for
        // correctness, but exercises the parked path).
        std::thread::sleep(Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn contended_mutex_counts_exactly() {
        let m = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 80_000);
    }

    #[test]
    fn contended_rwlock_writers_and_readers() {
        let l = Arc::new(RwLock::new(0u64));
        let sum = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for w in 0..4 {
            let l = Arc::clone(&l);
            handles.push(std::thread::spawn(move || {
                for _ in 0..5_000 {
                    *l.write() += w + 1;
                }
            }));
        }
        for _ in 0..4 {
            let l = Arc::clone(&l);
            let sum = Arc::clone(&sum);
            handles.push(std::thread::spawn(move || {
                for _ in 0..5_000 {
                    sum.fetch_add(*l.read(), Ordering::Relaxed);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*l.read(), 5_000 * (1 + 2 + 3 + 4));
    }

    #[test]
    fn condvar_notify_one_wakes_exactly_one_eventually_all() {
        let pair = Arc::new((Mutex::new(0u32), Condvar::new()));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let pair = Arc::clone(&pair);
            handles.push(std::thread::spawn(move || {
                let (lock, cvar) = &*pair;
                let mut count = lock.lock();
                while *count == 0 {
                    cvar.wait(&mut count);
                }
                *count -= 1;
            }));
        }
        std::thread::sleep(Duration::from_millis(10));
        for _ in 0..4 {
            *pair.0.lock() += 1;
            pair.1.notify_one();
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*pair.0.lock(), 0);
    }

    #[test]
    fn panic_while_holding_lock_unlocks_on_unwind() {
        let m = Arc::new(Mutex::new(1u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("intentional");
        })
        .join();
        // No poisoning: the lock is usable again.
        assert_eq!(*m.lock(), 1);
    }
}
