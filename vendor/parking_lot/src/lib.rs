//! Minimal offline stand-in for the `parking_lot` crate.
//!
//! The build container has no access to crates.io, so this shim provides the
//! subset of the `parking_lot` API the workspace uses — `Mutex`, `RwLock` and
//! `Condvar` with non-poisoning guards — on top of `std::sync`. Semantics
//! match `parking_lot` where the workspace depends on them: `lock()` returns
//! the guard directly (a poisoned `std` lock is recovered transparently) and
//! `Condvar::wait` borrows the guard instead of consuming it.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutual-exclusion primitive; `lock` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take the std guard out
    // while the thread is blocked, matching parking_lot's `&mut guard` API.
    guard: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { guard: Some(guard) }
    }

    /// Attempt to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { guard: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                guard: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutably borrow the inner value (no locking needed: `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard taken during wait")
    }
}

/// A reader-writer lock; `read`/`write` never return poison errors.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// RAII shared-read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: sync::RwLockReadGuard<'a, T>,
}

/// RAII exclusive-write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let guard = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockReadGuard { guard }
    }

    /// Acquire exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let guard = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockWriteGuard { guard }
    }

    /// Mutably borrow the inner value (no locking needed: `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

/// A condition variable whose `wait` borrows the guard (parking_lot style).
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Block until notified, releasing `guard`'s mutex while blocked.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.guard.take().expect("guard taken during wait");
        let std_guard = match self.inner.wait(std_guard) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.guard = Some(std_guard);
    }

    /// Block until `condition` returns false, releasing the mutex while blocked.
    pub fn wait_while<T, F: FnMut(&mut T) -> bool>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        mut condition: F,
    ) {
        while condition(&mut *guard) {
            self.wait(guard);
        }
    }

    /// Wake one blocked waiter.
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wake every blocked waiter.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut started = lock.lock();
            while !*started {
                cvar.wait(&mut started);
            }
        });
        *pair.0.lock() = true;
        pair.1.notify_all();
        t.join().unwrap();
    }
}
