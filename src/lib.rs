//! # dsm-pm2 — a Rust reproduction of the DSM-PM2 platform
//!
//! DSM-PM2 (Antoniu & Bougé, IPDPS/HIPS 2001) is a portable implementation
//! platform for *multithreaded DSM consistency protocols*: a generic core
//! (page manager, DSM communication, access detection, synchronization) on
//! top of which consistency protocols are written as small sets of event
//! handlers, registered at run time, and compared experimentally.
//!
//! This crate is the facade of the reproduction: it re-exports every layer so
//! applications (and the examples in `examples/`) can depend on a single
//! crate.
//!
//! ```
//! use dsm_pm2::prelude::*;
//!
//! let engine = Engine::new();
//! let rt = DsmRuntime::new(&engine, Pm2Config::bip_myrinet(2));
//! let protos = register_builtin_protocols(&rt);
//! rt.set_default_protocol(protos.li_hudak);
//!
//! let x = rt.dsm_malloc(4096, DsmAttr::default());
//! let done = rt.create_barrier(2, None);
//! rt.spawn_dsm_thread(NodeId(0), "writer", move |ctx| {
//!     ctx.write::<u64>(x, 34 + 1);
//!     ctx.dsm_barrier(done);
//! });
//! rt.spawn_dsm_thread(NodeId(1), "reader", move |ctx| {
//!     ctx.dsm_barrier(done);
//!     assert_eq!(ctx.read::<u64>(x), 35);
//! });
//! let mut engine = engine;
//! engine.run().unwrap();
//! ```
//!
//! ## Layers (bottom to top)
//!
//! * [`sim`] — deterministic discrete-event engine and cooperative threads.
//! * [`madeleine`] — network cost models (BIP/Myrinet, TCP/Myrinet,
//!   TCP/FastEthernet, SISCI/SCI) and the message transport.
//! * [`pm2`] — the PM2 runtime model: cluster, RPC, isomalloc, thread
//!   migration, monitoring.
//! * [`core`] — the DSM-PM2 generic core: page manager, DSM communication,
//!   access detection, protocol registry, protocol library, locks/barriers.
//! * [`protocols`] — the six built-in protocols of the paper, three extension
//!   protocols (fixed-manager sequential consistency, entry consistency, lazy
//!   release consistency with write notices) and hybrid construction.
//! * [`hyperion`] — the object layer used by the Java-consistency protocols.
//! * [`workloads`] — the applications of the evaluation (TSP, map colouring,
//!   Jacobi), the SPLASH-2-style kernels of the paper's outlook (matrix
//!   multiply, red-black SOR, LU, radix sort) and microkernels.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use dsmpm2_core as core;
pub use dsmpm2_hyperion as hyperion;
pub use dsmpm2_madeleine as madeleine;
pub use dsmpm2_pm2 as pm2;
pub use dsmpm2_protocols as protocols;
pub use dsmpm2_sim as sim;
pub use dsmpm2_workloads as workloads;

/// Convenient glob-import for applications: `use dsm_pm2::prelude::*;`.
pub mod prelude {
    pub use dsmpm2_core::{
        Access, BarrierId, DsmAddr, DsmAttr, DsmRuntime, DsmThreadCtx, HomePolicy, LockId, PageId,
        ProtocolId, PAGE_SIZE,
    };
    pub use dsmpm2_madeleine::{profiles, NetworkModel, NodeId};
    pub use dsmpm2_pm2::{Pm2Cluster, Pm2Config};
    pub use dsmpm2_protocols::{
        register_all_protocols, register_builtin_protocols, register_extension_protocols,
        BuiltinProtocols, ExtensionProtocols,
    };
    pub use dsmpm2_sim::{Engine, SimDuration, SimTime};
}
