//! A barrier-synchronised Jacobi stencil on the DSM, run under three
//! protocols — the kind of regular SPLASH-2-style sharing pattern the paper
//! lists as the next evaluation step.
//!
//! Run with: `cargo run --release --example jacobi -- [size] [nodes] [iters]`

use dsm_pm2::workloads::jacobi::{run_jacobi, JacobiConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let size: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(64);
    let nodes: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
    let iterations: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(8);

    println!("Jacobi {size}x{size}, {iterations} iterations, {nodes} nodes, BIP/Myrinet\n");
    println!(
        "{:<10} {:>14} {:>16} {:>12} {:>10}",
        "protocol", "time (ms)", "page transfers", "diffs", "checksum"
    );
    let mut reference = None;
    for proto in ["li_hudak", "erc_sw", "hbrc_mw"] {
        let config = JacobiConfig {
            size,
            iterations,
            nodes,
            network: dsm_pm2::madeleine::profiles::bip_myrinet(),
            compute_per_cell_us: 0.05,
            tuning: dsm_pm2::pm2::DsmTuning::default(),
            sim: dsm_pm2::pm2::SimTuning::default(),
            transport: dsm_pm2::pm2::TransportTuning::default(),
        };
        let r = run_jacobi(&config, proto);
        println!(
            "{:<10} {:>14.1} {:>16} {:>12} {:>10.1}",
            proto,
            r.elapsed.as_millis_f64(),
            r.stats.page_transfers,
            r.stats.diffs_sent,
            r.checksum
        );
        match reference {
            None => reference = Some(r.checksum),
            Some(c) => assert!(
                (c - r.checksum).abs() < 1e-6,
                "protocols must agree on the numerical result"
            ),
        }
    }
    println!("\nAll protocols produce the same grid; they differ only in how pages move.");
}
