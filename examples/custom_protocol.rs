//! Building a new protocol out of library routines (§2.3 of the paper).
//!
//! The paper's "mixed approach": page replication on read faults (as in
//! `li_hudak`) combined with thread migration on write faults (as in
//! `migrate_thread`). The protocol is assembled from the protocol-library
//! toolbox with the `CustomProtocol` builder, registered at run time exactly
//! like `dsm_create_protocol`, and then used like any built-in protocol — no
//! recompilation of the platform required.
//!
//! Run with: `cargo run --example custom_protocol`

use dsm_pm2::core::{protolib, Access, CustomProtocol, DsmAttr, DsmRuntime, HomePolicy};
use dsm_pm2::prelude::*;

fn main() {
    let engine = Engine::new();
    let rt = DsmRuntime::new(&engine, Pm2Config::bip_myrinet(3));
    let builtins = register_builtin_protocols(&rt);

    // dsm_create_protocol(read_fault_handler, write_fault_handler, ...)
    let hybrid = CustomProtocol::builder("my_hybrid")
        .read_fault_handler(|ctx, fault| {
            let rt = ctx.runtime().clone();
            let node = ctx.node();
            protolib::request_page_and_wait(ctx.pm2.sim, node, &rt, fault.page, Access::Read);
        })
        .write_fault_handler(|ctx, fault| {
            protolib::migrate_thread_to_page(ctx, fault.page);
        })
        .read_server(|ctx, req| {
            let rt = ctx.runtime.clone();
            let node = ctx.local_node;
            if rt.page_table(node).get(req.page).owned {
                protolib::serve_read_copy(ctx.sim, node, &rt, &req);
            } else {
                protolib::forward_request(ctx.sim, node, &rt, &req);
            }
        })
        .invalidate_server(|ctx, inv| {
            let rt = ctx.runtime.clone();
            let node = ctx.local_node;
            protolib::apply_invalidation(ctx.sim, node, &rt, &inv);
        })
        .receive_page_server(|ctx, transfer| {
            let rt = ctx.runtime.clone();
            let node = ctx.local_node;
            protolib::install_received_page(ctx.sim, node, &rt, &transfer);
        })
        .build();

    let my_hybrid = rt.register_protocol(hybrid);
    // Dynamic protocol selection, as in the paper: pick one of several
    // registered protocols at run time without recompiling.
    let use_hybrid = std::env::args().all(|a| a != "--builtin");
    let selected = if use_hybrid {
        my_hybrid
    } else {
        builtins.li_hudak
    };
    rt.set_default_protocol(selected);
    println!("selected protocol: {}", rt.protocol(selected).name());

    // A read-mostly table homed on node 0, plus a write-intensive cell.
    let table = rt.dsm_malloc(4096, DsmAttr::default().home(HomePolicy::Fixed(NodeId(0))));
    let ready = rt.create_barrier(3, None);

    rt.spawn_dsm_thread(NodeId(0), "producer", move |ctx| {
        for i in 0..16u64 {
            ctx.write::<u64>(table.add(i * 8), i * i);
        }
        ctx.dsm_barrier(ready);
        ctx.dsm_barrier(ready);
    });
    for node in 1..3usize {
        rt.spawn_dsm_thread(NodeId(node), format!("consumer-{node}"), move |ctx| {
            ctx.dsm_barrier(ready);
            // Reads replicate the page locally; the thread stays put.
            let mut sum = 0;
            for i in 0..16u64 {
                sum += ctx.read::<u64>(table.add(i * 8));
            }
            println!("node {} read the table locally, sum = {sum}", ctx.node());
            assert_eq!(ctx.node(), NodeId(node));
            // The first write drags the thread to the data instead of moving
            // the page.
            ctx.write::<u64>(table.add(8 * (node as u64 + 16)), sum);
            println!("node {node} thread now runs on {}", ctx.node());
            assert_eq!(ctx.node(), NodeId(0));
            ctx.dsm_barrier(ready);
        });
    }

    let mut engine = engine;
    engine.run().expect("custom protocol example completed");
    let stats = rt.stats().snapshot();
    println!(
        "\npage transfers: {}, thread migrations: {}",
        stats.page_transfers, stats.thread_migrations
    );
    assert!(stats.page_transfers >= 2 && stats.thread_migrations >= 2);
}
