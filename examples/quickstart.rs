//! Quickstart: the Figure 2 program of the paper, in Rust.
//!
//! A shared integer lives in the DSM static data area, the built-in
//! `li_hudak` protocol is selected as the default, and threads on different
//! nodes read and update it under a DSM lock.
//!
//! Run with: `cargo run --example quickstart`

use dsm_pm2::prelude::*;

fn main() {
    // Boot a 4-node cluster over the BIP/Myrinet profile and install DSM-PM2.
    let engine = Engine::new();
    let rt = dsm_pm2::core::DsmRuntime::new(&engine, Pm2Config::bip_myrinet(4));
    let protocols = register_builtin_protocols(&rt);

    // pm2_dsm_set_default_protocol(li_hudak);
    rt.set_default_protocol(protocols.li_hudak);

    // BEGIN_DSM_DATA int x = 34; END_DSM_DATA
    let x = rt.dsm_static_area(4096);
    let lock = rt.create_lock(None);
    let done = rt.create_barrier(4, None);

    for node in 0..4usize {
        rt.spawn_dsm_thread(NodeId(node), format!("worker-{node}"), move |ctx| {
            if node == 0 {
                // x = 34;
                ctx.write::<u64>(x, 34);
            }
            ctx.dsm_barrier(done);
            // x++ on every node, under a DSM lock.
            ctx.dsm_lock(lock);
            let v = ctx.read::<u64>(x);
            ctx.write::<u64>(x, v + 1);
            ctx.dsm_unlock(lock);
            ctx.dsm_barrier(done);
            let final_value = ctx.read::<u64>(x);
            println!(
                "[{:>9}] node {} sees x = {}",
                format!("{}", ctx.pm2.now()),
                ctx.node(),
                final_value
            );
            assert_eq!(final_value, 38);
        });
    }

    let mut engine = engine;
    let report = engine.run().expect("simulation completed");
    println!("\nvirtual time: {}", report.final_time);
    println!("DSM statistics: {:#?}", rt.stats().snapshot());
    println!(
        "\npost-mortem monitor:\n{}",
        rt.cluster().monitor().report()
    );
}
