//! Switching the protocol of a shared region between program phases (§2.3 of
//! the paper): a work queue is filled under a page-based sequential
//! consistency protocol (good for the bulk initialisation), then switched to
//! the thread-migration protocol for the processing phase, in which every
//! worker's accesses drag it to the data instead of copying pages around.
//!
//! The switch is bracketed by barriers, exactly as the paper prescribes: "one
//! has to keep the corresponding memory area from being accessed by the
//! application threads during the protocol switch".
//!
//! Run with: `cargo run --example protocol_switch`

use std::sync::Arc;

use parking_lot::Mutex;

use dsm_pm2::core::{DsmAttr, DsmRuntime, HomePolicy};
use dsm_pm2::prelude::*;

const NODES: usize = 4;
const ITEMS: usize = 64;

fn main() {
    let engine = Engine::new();
    let rt = DsmRuntime::new(&engine, Pm2Config::bip_myrinet(NODES));
    let protocols = register_builtin_protocols(&rt);
    rt.set_default_protocol(protocols.li_hudak);

    // The work queue lives on node 0; items are u64 slots.
    let queue = rt.dsm_malloc(
        (ITEMS * 8) as u64,
        DsmAttr::default().home(HomePolicy::Fixed(NodeId(0))),
    );
    let phase = rt.create_barrier(NODES, None);
    let results = Arc::new(Mutex::new(Vec::new()));

    let rt_for_switch = rt.clone();
    for node in 0..NODES {
        let results = results.clone();
        let rt_for_switch = rt_for_switch.clone();
        rt.spawn_dsm_thread(NodeId(node), format!("worker-{node}"), move |ctx| {
            // Phase 1 (li_hudak): every node fills its share of the queue.
            for i in (node..ITEMS).step_by(NODES) {
                ctx.write::<u64>(queue.add((i * 8) as u64), (i * i) as u64);
            }
            ctx.dsm_barrier(phase);

            // Quiescent point: node 0 switches the queue region to the
            // thread-migration protocol while nobody touches it.
            if node == 0 {
                let switched = rt_for_switch.switch_region_protocol(
                    queue,
                    (ITEMS * 8) as u64,
                    rt_for_switch.protocol_by_name("migrate_thread").unwrap(),
                );
                println!("switched {switched} page(s) to migrate_thread");
            }
            ctx.dsm_barrier(phase);

            // Phase 2 (migrate_thread): processing the queue drags every
            // worker to node 0, where the data lives.
            let mut sum = 0u64;
            for i in (node..ITEMS).step_by(NODES) {
                sum += ctx.read::<u64>(queue.add((i * 8) as u64));
            }
            results
                .lock()
                .push((node, sum, ctx.node(), ctx.pm2.state().migrations()));
            ctx.dsm_barrier(phase);
        });
    }

    let mut engine = engine;
    engine.run().expect("simulation completed");

    let expected_total: u64 = (0..ITEMS as u64).map(|i| i * i).sum();
    let mut grand_total = 0;
    println!("\nworker results (value sum, final node, migrations):");
    for (node, sum, final_node, migrations) in results.lock().iter() {
        println!(
            "  worker {node}: sum = {sum:>6}, now on node {final_node}, migrated {migrations} time(s)"
        );
        grand_total += sum;
        if *node != 0 {
            assert_eq!(*final_node, NodeId(0), "phase 2 drags workers to the data");
        }
    }
    assert_eq!(grand_total, expected_total);

    let stats = rt.stats().snapshot();
    println!(
        "\nphase 1 moved pages ({} transfers); phase 2 moved threads ({} migrations)",
        stats.page_transfers, stats.thread_migrations
    );
}
