//! Entry consistency in practice: independent shared objects, each bound to
//! its own lock, manipulated concurrently from every node. Acquiring a lock
//! makes exactly the data bound to it consistent — the other objects never
//! generate any traffic for nodes that do not touch them.
//!
//! Run with: `cargo run --example entry_consistency`

use std::sync::Arc;

use parking_lot::Mutex;

use dsm_pm2::core::{DsmAttr, DsmRuntime, HomePolicy};
use dsm_pm2::prelude::*;

const NODES: usize = 4;
const ACCOUNTS: usize = 8;
const TRANSFERS_PER_NODE: usize = 16;

fn main() {
    let engine = Engine::new();
    let rt = DsmRuntime::new(&engine, Pm2Config::sisci_sci(NODES));
    let (_builtins, extensions) = register_all_protocols(&rt);
    rt.set_default_protocol(extensions.entry_sw);

    // One "account" per page, each guarded by (and bound to) its own lock —
    // the Midway programming model.
    let mut accounts = Vec::new();
    for i in 0..ACCOUNTS {
        let addr = rt.dsm_malloc(
            4096,
            DsmAttr::default().home(HomePolicy::Fixed(NodeId(i % NODES))),
        );
        let lock = rt.create_lock(Some(NodeId(i % NODES)));
        extensions.entry.bind(lock, addr, 4096);
        accounts.push((addr, lock));
    }
    let accounts = Arc::new(accounts);
    let done = rt.create_barrier(NODES, None);
    let audit = Arc::new(Mutex::new(Vec::new()));

    // Every node seeds two accounts, then performs transfers between pairs of
    // accounts, always acquiring the two guarding locks in index order.
    for node in 0..NODES {
        let accounts = accounts.clone();
        let audit = audit.clone();
        rt.spawn_dsm_thread(NodeId(node), format!("bank-{node}"), move |ctx| {
            for (i, &(addr, lock)) in accounts.iter().enumerate() {
                if i % NODES == node {
                    ctx.dsm_lock(lock);
                    ctx.write::<u64>(addr, 1000);
                    ctx.dsm_unlock(lock);
                }
            }
            ctx.dsm_barrier(done);

            for t in 0..TRANSFERS_PER_NODE {
                let from = (node + t) % ACCOUNTS;
                let to = (node + t + 1 + t % 3) % ACCOUNTS;
                if from == to {
                    continue;
                }
                let (first, second) = if from < to { (from, to) } else { (to, from) };
                let (addr_a, lock_a) = accounts[first];
                let (addr_b, lock_b) = accounts[second];
                ctx.dsm_lock(lock_a);
                ctx.dsm_lock(lock_b);
                let amount = 10 + (t as u64 % 5);
                let (src, dst) = if from < to {
                    (addr_a, addr_b)
                } else {
                    (addr_b, addr_a)
                };
                let balance_src = ctx.read::<u64>(src);
                let balance_dst = ctx.read::<u64>(dst);
                ctx.write::<u64>(src, balance_src - amount);
                ctx.write::<u64>(dst, balance_dst + amount);
                ctx.dsm_unlock(lock_b);
                ctx.dsm_unlock(lock_a);
            }
            ctx.dsm_barrier(done);

            // Audit: every node sums every account under its lock.
            let mut total = 0u64;
            for &(addr, lock) in accounts.iter() {
                ctx.dsm_lock(lock);
                total += ctx.read::<u64>(addr);
                ctx.dsm_unlock(lock);
            }
            audit.lock().push((node, total));
        });
    }

    let mut engine = engine;
    engine.run().expect("simulation completed");

    let expected = (ACCOUNTS as u64) * 1000;
    println!("entry consistency (entry_sw), {NODES} nodes, {ACCOUNTS} accounts");
    for (node, total) in audit.lock().iter() {
        println!("  node {node}: audited total = {total}");
        assert_eq!(*total, expected, "money must be conserved");
    }
    let stats = rt.stats().snapshot();
    println!("\nDSM statistics: {stats:#?}");
    println!(
        "page transfers: {}, diffs: {}, invalidations: {} — only the pages bound to the \
         acquired locks ever moved",
        stats.page_transfers, stats.diffs_sent, stats.invalidations
    );
}
