//! The paper's Figure 5 workload as a runnable example: minimal-cost
//! 4-colouring of the 29 eastern-most US states through the Hyperion object
//! layer, comparing the two Java-consistency protocols.
//!
//! Run with: `cargo run --release --example map_coloring -- [states] [nodes]`
//! (defaults: 18 states, 4 nodes — use 29 to match the paper exactly).

use dsm_pm2::workloads::map_coloring::{run_map_coloring, ColoringConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let states: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(18);
    let nodes: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);

    println!("Minimal-cost map colouring, {states} states, {nodes} nodes, SISCI/SCI\n");
    println!(
        "{:<10} {:>14} {:>12} {:>14} {:>12}",
        "protocol", "time (ms)", "best cost", "inline checks", "page faults"
    );
    let mut costs = Vec::new();
    for proto in ["java_ic", "java_pf"] {
        let mut config = ColoringConfig::paper(nodes);
        config.num_states = states;
        let r = run_map_coloring(&config, proto);
        println!(
            "{:<10} {:>14.1} {:>12} {:>14} {:>12}",
            proto,
            r.elapsed.as_millis_f64(),
            r.best_cost,
            r.inline_checks,
            r.faults
        );
        costs.push(r.best_cost);
    }
    assert_eq!(costs[0], costs[1], "both protocols find the same optimum");
    println!("\nAs in the paper, java_pf outperforms java_ic: objects are well distributed,");
    println!("so local accesses dominate and the per-access inline check is pure overhead.");
}
