//! Protocol comparison on the SPLASH-2-style kernels the paper announces as
//! its next evaluation step: blocked matrix multiply, red-black SOR, LU
//! factorisation and radix sort, each run under several consistency protocols
//! on the same BIP/Myrinet cluster model.
//!
//! Run with: `cargo run --release --example splash_kernels`

use dsm_pm2::workloads::{lu, matmul, radix, sor};

fn main() {
    let protocols = [
        "li_hudak",
        "li_hudak_fixed",
        "erc_sw",
        "hbrc_mw",
        "hlrc_notices",
    ];
    println!("SPLASH-2-style kernels, 4 nodes, BIP/Myrinet (virtual milliseconds)\n");
    println!(
        "{:<14} {:>14} {:>14} {:>14} {:>14} {:>14}",
        "kernel", protocols[0], protocols[1], protocols[2], protocols[3], protocols[4]
    );

    let mm = matmul::MatmulConfig {
        n: 32,
        nodes: 4,
        network: dsm_pm2::madeleine::profiles::bip_myrinet(),
        compute_per_madd_us: 0.01,
        tuning: dsm_pm2::pm2::DsmTuning::default(),
        transport: dsm_pm2::pm2::TransportTuning::default(),
        sim: dsm_pm2::pm2::SimTuning::default(),
    };
    let mm_oracle = matmul::sequential_checksum(mm.n);
    print!("{:<14}", "matmul 32x32");
    for proto in protocols {
        let r = matmul::run_matmul(&mm, proto);
        assert!(
            (r.checksum - mm_oracle).abs() < 1e-6,
            "{proto} diverged on matmul"
        );
        print!(" {:>13.2}", r.elapsed.as_micros_f64() / 1000.0);
    }
    println!();

    let sor_config = sor::SorConfig {
        size: 32,
        iterations: 4,
        omega: 1.25,
        nodes: 4,
        network: dsm_pm2::madeleine::profiles::bip_myrinet(),
        compute_per_cell_us: 0.05,
        tuning: dsm_pm2::pm2::DsmTuning::default(),
        transport: dsm_pm2::pm2::TransportTuning::default(),
        sim: dsm_pm2::pm2::SimTuning::default(),
    };
    let sor_oracle = sor::sequential_checksum(&sor_config);
    print!("{:<14}", "sor 32x32");
    for proto in protocols {
        let r = sor::run_sor(&sor_config, proto);
        assert!(
            (r.checksum - sor_oracle).abs() < 1e-6,
            "{proto} diverged on sor"
        );
        print!(" {:>13.2}", r.elapsed.as_micros_f64() / 1000.0);
    }
    println!();

    let lu_config = lu::LuConfig {
        n: 24,
        nodes: 4,
        network: dsm_pm2::madeleine::profiles::bip_myrinet(),
        compute_per_update_us: 0.02,
    };
    let lu_oracle = lu::sequential_checksum(lu_config.n);
    print!("{:<14}", "lu 24x24");
    for proto in protocols {
        let r = lu::run_lu(&lu_config, proto);
        assert!(
            (r.checksum - lu_oracle).abs() < 1e-6,
            "{proto} diverged on lu"
        );
        print!(" {:>13.2}", r.elapsed.as_micros_f64() / 1000.0);
    }
    println!();

    let radix_config = radix::RadixConfig {
        keys: 256,
        max_key: 1 << 16,
        seed: 42,
        nodes: 4,
        network: dsm_pm2::madeleine::profiles::bip_myrinet(),
        compute_per_key_us: 0.05,
    };
    let mut oracle = radix::input_keys(&radix_config);
    oracle.sort_unstable();
    print!("{:<14}", "radix 256");
    for proto in protocols {
        let r = radix::run_radix(&radix_config, proto);
        assert_eq!(r.sorted, oracle, "{proto} produced an unsorted array");
        print!(" {:>13.2}", r.elapsed.as_micros_f64() / 1000.0);
    }
    println!();

    println!(
        "\nEvery cell is the virtual completion time of the kernel under that protocol; \
         all runs are checked against sequential oracles."
    );
}
