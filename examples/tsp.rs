//! The paper's Figure 4 workload as a runnable example: TSP by branch and
//! bound with one application thread per node, comparing the four protocols.
//!
//! Run with: `cargo run --release --example tsp -- [cities] [nodes]`
//! (defaults: 11 cities, 4 nodes — use 14 to match the paper exactly).

use dsm_pm2::workloads::tsp::{run_tsp, TspConfig, TspInstance};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let cities: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(11);
    let nodes: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);

    let oracle = TspInstance::random(cities, 42).solve_sequential();
    println!("TSP, {cities} cities, {nodes} nodes (one thread per node), BIP/Myrinet");
    println!("sequential optimum: {oracle}\n");
    println!(
        "{:<16} {:>14} {:>16} {:>12} {:>12}",
        "protocol", "time (ms)", "page transfers", "migrations", "faults"
    );
    for proto in ["li_hudak", "migrate_thread", "erc_sw", "hbrc_mw"] {
        let mut config = TspConfig::paper(nodes);
        config.cities = cities;
        let r = run_tsp(&config, proto);
        assert_eq!(r.best, oracle, "protocol {proto} must find the optimum");
        println!(
            "{:<16} {:>14.1} {:>16} {:>12} {:>12}",
            proto,
            r.elapsed.as_millis_f64(),
            r.stats.page_transfers,
            r.migrations,
            r.stats.total_faults()
        );
    }
    println!("\nAs in the paper, the page-based protocols beat migrate_thread: all threads");
    println!("migrate to the node holding the shared bound, which becomes overloaded.");
}
